// engine.hpp — the discrete-event message-passing engine (§II of the paper).
//
// The engine owns a set of processes, one incoming channel per process, and a
// scheduler.  Protocols implement the Process interface; the self-stabilizing
// small-world node and the baseline linearization node are both plugins.
// Everything is deterministic given (seed, scheduler, initial state).
//
// Determinism model (DESIGN.md "Sharded deterministic execution"):
//   * every process owns a private random stream, derived once from
//     (seed, id) — protocol coin flips, channel-drain shuffles, and the
//     loss/fault fate of that process's sends all come from its stream;
//   * the engine stream (rng()) belongs to the scheduler alone (the
//     random-async action picks);
//   * synchronous-family rounds split each phase over `shards` contiguous
//     rank ranges.  Worker lanes buffer their side effects (sends, timer
//     arms, counter deltas) and a sequential merge at the phase barrier
//     applies them in canonical (sender rank, send order); contiguous
//     partitioning makes that concatenation identical for every shard
//     count, so trajectories are bit-identical across shards ∈ {1, 2, …}.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "obs/registry.hpp"
#include "sim/channel.hpp"
#include "sim/faults.hpp"
#include "sim/message.hpp"
#include "sim/scheduler.hpp"
#include "util/fenwick.hpp"
#include "util/rng.hpp"

namespace sssw::sim {

class Engine;

/// Engine-internal: one buffered send awaiting the phase barrier.  Parallel
/// phases must not touch channels, counters, or another process's stream, so
/// Context::send records (who, where, what) and the merge does the rest.
struct PendingSend {
  std::size_t from_slot;
  Id to;
  Message message;
};

/// Engine-internal: one shard lane's buffered side effects for the current
/// phase.  Lanes are merged sequentially in lane order at the barrier.
struct EngineLane {
  struct TimerArm {
    Id id;
    std::uint32_t delay;
    std::uint64_t tag;
  };
  std::vector<PendingSend> outbox;
  std::vector<TimerArm> timer_arms;
  std::uint64_t actions = 0;
  std::uint64_t deliveries = 0;
  std::size_t drained = 0;  ///< messages taken out of channels this phase
};

/// The face of the engine a process sees while executing one atomic action.
class Context {
 public:
  /// Sends `message` to the node with identifier `to`.  Sends to identifiers
  /// that no longer exist (departed nodes) are counted and dropped, matching
  /// the leave semantics of §IV.G.  Self-sends are legal.  Inside a parallel
  /// phase the send is buffered and takes effect at the phase barrier, in
  /// canonical (sender rank, send order) — invisible to the protocol, which
  /// never observes a channel it sent to within the same phase anyway.
  void send(Id to, const Message& message);

  /// The acting process's private deterministic stream (derived from the
  /// engine seed and the process id), so concurrent actions never contend
  /// for — or, worse, reorder — a shared generator.
  util::Rng& rng();

  /// Synchronous round counter (also advanced by async steps, see Engine).
  std::uint64_t round() const noexcept;

  /// Arms a timer for the acting process: `on_timer(tag)` fires at the start
  /// of the round `delay` rounds from now (see Engine::schedule_timer).
  void schedule_timer(std::uint32_t delay, std::uint64_t tag);

 private:
  friend class Engine;
  Context(Engine& engine, Id self, util::Rng* rng, std::size_t from_slot,
          EngineLane* lane) noexcept
      : engine_(engine),
        self_(self),
        rng_(rng),
        from_slot_(from_slot),
        lane_(lane) {}
  Engine& engine_;
  Id self_;  ///< the acting process (the fault layer's partition filter
             ///< needs the sender, which a Message does not carry)
  util::Rng* rng_;         ///< the acting process's slot stream
  std::size_t from_slot_;  ///< the acting process's slot index
  EngineLane* lane_;       ///< non-null inside a parallel phase: buffer here
};

/// Cheap protocol tag: hot inspection paths (invariant predicates, views,
/// snapshots) used to dynamic_cast every process per evaluation, which is
/// measurable at n >= 10^4.  Each protocol family claims one constant here
/// and inspection code checks the tag before a static_cast.  0 is reserved
/// for untagged test/utility processes, which no typed accessor matches.
using ProcessKind = std::uint8_t;
inline constexpr ProcessKind kUntaggedProcess = 0;
inline constexpr ProcessKind kSmallWorldProcess = 1;
inline constexpr ProcessKind kLinearizationProcess = 2;
inline constexpr ProcessKind kFingerProcess = 3;

/// A protocol node.  Actions are atomic: the engine never interleaves two
/// callbacks *of the same process*, and concurrent actions of different
/// processes share no mutable state (each process owns its state and stream;
/// sends are buffered).  `on_message` is the receive action, `on_regular`
/// the always-enabled regular action (Algorithm 1's two actions).
class Process {
 public:
  virtual ~Process() = default;
  virtual Id id() const noexcept = 0;
  virtual void on_message(Context& ctx, const Message& message) = 0;
  virtual void on_regular(Context& ctx) = 0;

  /// Timer action: fires for timers armed via Context::schedule_timer /
  /// Engine::schedule_timer.  Default is a no-op so protocols without timers
  /// are untouched.  Like the other actions it is atomic and may send
  /// messages or re-arm timers.
  virtual void on_timer(Context& ctx, std::uint64_t tag) {
    (void)ctx;
    (void)tag;
  }

  ProcessKind kind() const noexcept { return kind_; }

 protected:
  Process() = default;
  explicit Process(ProcessKind kind) noexcept : kind_(kind) {}

 private:
  const ProcessKind kind_ = kUntaggedProcess;
};

struct EngineConfig {
  SchedulerKind scheduler = SchedulerKind::kSynchronous;
  std::uint64_t seed = 1;
  /// In kRandomAsync, number of atomic actions that count as one "round"
  /// when 0: defaults to (#processes + #pending messages) per round.
  std::size_t async_actions_per_round = 0;
  /// In kDelayedRandom, each pending message is independently delivered in a
  /// given round with this probability (the paper's slow-channel adversary
  /// used 1/2).  Must lie in (0, 1]; validated at engine construction.
  double delivery_probability = 0.5;
  /// Each sent message is independently lost with this probability.  The
  /// paper's model assumes lossless channels; a self-stabilizing protocol
  /// that re-announces its state every round tolerates loss anyway — this
  /// knob lets the tests and benches demonstrate that.  Must lie in [0, 1);
  /// validated at engine construction.
  double message_loss = 0.0;
  /// Fault-injection adversary on the send path (duplication, bounded extra
  /// delay, transient partitions, stale replay — see sim/faults.hpp and
  /// doc/FAULTS.md).  A default-constructed plan is inactive and leaves the
  /// trajectory bit-identical to a fault-free run.
  FaultPlan faults{};
  /// In kAdversarialOldestLast, the fairness deadline: every message is
  /// held this many extra rounds before its channel sees it.  Must be >= 1.
  std::uint32_t adversary_delay = 3;
  /// Worker lanes the synchronous-family schedulers fan each round's phases
  /// across.  Trajectories are bit-identical for every value >= 1 (the
  /// determinism model above), so this is purely a wall-clock knob.
  /// kRandomAsync is inherently sequential and ignores it.  Must be >= 1.
  std::size_t shards = 1;
};

struct EngineCounters {
  std::uint64_t rounds = 0;
  std::uint64_t actions = 0;     ///< atomic actions executed (receive + regular)
  std::uint64_t deliveries = 0;  ///< receive actions executed
  std::uint64_t dropped = 0;     ///< sends to departed/unknown identifiers
  std::uint64_t lost = 0;        ///< sends eaten by the loss model
  std::uint64_t timers = 0;      ///< timer actions fired (on_timer callbacks)
  FaultCounters faults;          ///< injected-fault events (sim/faults.hpp)
  std::array<std::uint64_t, kMaxMessageTypes> sent_by_type{};

  std::uint64_t total_sent() const noexcept {
    std::uint64_t sum = 0;
    for (const auto count : sent_by_type) sum += count;
    return sum;
  }
};

class Engine {
 public:
  explicit Engine(EngineConfig config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;

  /// Registers a process.  Identifiers must be unique and finite.  O(n − r)
  /// for rank r (the sorted-order insert shift), so ascending bulk loads are
  /// O(1) amortized per node — million-node networks build in linear time.
  void add_process(std::unique_ptr<Process> process);

  /// Removes a process: its state and channel vanish; in-flight messages to
  /// it will be dropped on send.  With `purge_references` (the fail-stop
  /// "leave" of §IV.G) every in-flight message carrying the departed
  /// identifier is also removed; without it (crash-stop) stale references
  /// stay in flight and only a failure detector can heal the survivors.
  /// Returns false if no such process exists.
  bool remove_process(Id id, bool purge_references = true);

  std::size_t process_count() const noexcept { return order_.size(); }
  bool contains(Id id) const noexcept { return index_.contains(id); }

  /// Mutable/const access to a node's protocol state for setup & inspection.
  Process* find(Id id) noexcept;
  const Process* find(Id id) const noexcept;

  /// All process identifiers in ascending order, as an allocation-free view
  /// over the engine's incrementally maintained sorted order.  Invalidated
  /// by add_process/remove_process (take it fresh after membership changes;
  /// do not hold it across a join/leave — copy into a vector for that).
  std::span<const Id> id_span() const noexcept { return ids_sorted_; }

  /// Applies `fn` to every process in ascending identifier order.
  void for_each(const std::function<void(const Process&)>& fn) const;

  /// Places a message directly into the channel of `to` without a sender —
  /// models arbitrary initial channel contents (self-stabilization starts
  /// from any state, including garbage in flight).  Returns false if no such
  /// process exists.
  bool inject(Id to, const Message& message);

  /// Arms a timer: process `id` receives `on_timer(tag)` at the start of the
  /// round `delay` rounds from now (`delay` >= 1), before any message of
  /// that round is received.  Timers due in the same round fire in ascending
  /// id order (ties per id in arming order), so trajectories stay a pure
  /// function of (state, seed) like every other scheduling decision.  Timers
  /// for a process that has since left or crashed lapse silently; a run that
  /// never arms a timer is bit-identical to one built before timers existed.
  void schedule_timer(Id id, std::uint32_t delay, std::uint64_t tag);

  /// Timers currently armed (tests/inspection).
  std::size_t pending_timers() const noexcept { return timer_count_; }

  /// Executes one round under the configured scheduler.
  void run_round();

  /// Executes `rounds` rounds.
  void run_rounds(std::size_t rounds);

  /// Runs until `predicate()` holds (checked after each round) or
  /// `max_rounds` elapse; returns true iff the predicate held.
  bool run_until(const std::function<bool()>& predicate, std::size_t max_rounds);

  /// Total number of messages currently in flight: channel contents plus
  /// messages parked in the fault layer's hold queue (a held message is
  /// still "in the channel" as far as Def. 4.2 views are concerned).  O(1):
  /// both counts are maintained incrementally, not recomputed.
  std::size_t pending_messages() const noexcept {
    return pending_total_ + (faults_ ? faults_->held_count() : 0);
  }

  /// Applies `fn` to every pending message with its destination identifier
  /// (the channel's owner), in ascending owner order; messages held by the
  /// fault layer are visited after the channel contents, in hold order.
  void for_each_pending(const std::function<void(Id to, const Message&)>& fn) const;

  const EngineCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = EngineCounters{}; }

  /// The scheduler's stream.  Protocol code should use Context::rng (its
  /// per-process stream) instead; this one decides only scheduler-level
  /// draws, so that shard lanes never share a generator.
  util::Rng& rng() noexcept { return rng_; }
  std::uint64_t round() const noexcept { return counters_.rounds; }

  /// Streams this engine's events into `registry` (counter and gauge names
  /// per doc/OBSERVABILITY.md: engine.rounds, engine.messages.sent, …).
  /// The registry must outlive the engine or be detached first.  Metrics
  /// accumulate from the moment of attachment; they are not retroactive.
  void attach_metrics(obs::Registry& registry);
  void detach_metrics() noexcept { metrics_ = Metrics{}; }

  // --- observation hooks ------------------------------------------------
  // Hooks are *chained*: any number of observers may attach concurrently
  // (a Trace, the metrics layer, a test capture) and each receives every
  // event.  add returns a token for targeted removal, so detaching one
  // observer never silently disables another.
  //
  // Threading: send and round hooks always fire from the sequential merge /
  // epilogue.  A registered delivery hook forces rounds onto a single lane
  // (sequential, canonical order) — observation keeps exact event order at
  // the cost of parallelism, and the trajectory is unchanged either way.
  using DeliveryHook = std::function<void(Id to, const Message&)>;
  using RoundHook = std::function<void(std::uint64_t round)>;
  using HookId = std::uint64_t;

  /// Observer invoked on every delivery (for traces/tests).
  HookId add_delivery_hook(DeliveryHook hook);
  bool remove_delivery_hook(HookId id) noexcept;

  /// Observer invoked on every send, before loss/routing (for traces and
  /// the conformance tests' send capture).
  HookId add_send_hook(DeliveryHook hook);
  bool remove_send_hook(HookId id) noexcept;

  /// Observer invoked at the end of every round with the new round number
  /// (periodic snapshotting, convergence watchdogs).
  HookId add_round_hook(RoundHook hook);
  bool remove_round_hook(HookId id) noexcept;

  /// Testing scheduler: delivers everything currently pending (shuffled per
  /// receiver stream) WITHOUT executing any regular action, and does not
  /// advance the round counter.  Lets tests exercise a single receive action
  /// in isolation.
  void deliver_pending_once();

 private:
  friend class Context;

  struct Slot {
    std::unique_ptr<Process> process;
    Channel channel;
    /// This slot's position in order_ (its rank among live ids).  Lets the
    /// hot paths map slot → Fenwick index in O(1).  Stale for dead slots.
    std::size_t rank = 0;
    /// The process's private stream: util::derive_stream(seed, bits of id).
    /// Touched only by this process's own actions, its channel drains, and
    /// the merge-time fate of its sends — never by another lane.
    util::Rng rng{0};
  };

  /// Hash for the identifier index: one multiply-xorshift over the id's
  /// bits.  Ids are finite doubles (validated at add), so there is no
  /// -0.0/NaN aliasing to worry about and bit identity is value identity.
  struct IdHash {
    std::size_t operator()(Id id) const noexcept {
      std::uint64_t x = std::bit_cast<std::uint64_t>(id);
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdull;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };

  /// Cached metric handles (registry-owned); all null when detached, so the
  /// hot paths pay one branch.  Counters are relaxed-atomic (obs/registry),
  /// so lane-parallel adds are safe and totals stay deterministic.
  struct Metrics {
    obs::Counter* rounds = nullptr;
    obs::Counter* actions = nullptr;
    obs::Counter* sent = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* lost = nullptr;
    obs::Counter* timers = nullptr;
    obs::Counter* faults_duplicated = nullptr;
    obs::Counter* faults_delayed = nullptr;
    obs::Counter* faults_replayed = nullptr;
    obs::Counter* faults_partition_dropped = nullptr;
    obs::Gauge* channel_depth = nullptr;
    obs::Gauge* processes = nullptr;
  };

  /// The sequential send path: counts the send, fires send hooks, draws the
  /// loss/fault fate from the *sender's* stream, and routes the survivors.
  /// Called inline from sequential contexts and from the phase merge for
  /// buffered sends — same code, same stream, same order either way.
  void dispatch_send(std::size_t from_slot, Id to, const Message& message);
  void enqueue_or_drop(Id to, const Message& message);
  void release_due_messages();
  void fire_due_timers();
  /// Sequential delivery (async scheduler, deliver_pending_once).
  void deliver(Slot& slot, std::size_t slot_index, const Message& message);
  /// Lane delivery: counters and sends buffer into `lane`.
  void deliver_buffered(Slot& slot, std::size_t slot_index,
                        const Message& message, EngineLane& lane);
  void run_synchronous_round(ReceiptOrder order);
  void run_async_round();
  void finish_round();
  /// Applies every lane's buffered effects in lane order (sequential).
  void merge_lanes(std::size_t lanes);
  /// Lanes for a round over `n` processes: config shards, capped by n, and
  /// forced to 1 while a delivery hook wants exact sequential observation.
  std::size_t effective_lanes(std::size_t n) const noexcept;
  /// Lazily rebuilds the pending-by-rank Fenwick index (async scheduler
  /// only) after membership changes invalidated it.
  void ensure_fenwick();
  void note_drained(Slot& slot, std::size_t removed) noexcept;

  EngineConfig config_;
  util::Rng rng_;
  // Present only when the fault plan is active or the scheduler needs the
  // hold queue (kAdversarialOldestLast); null means the send path is the
  // exact fault-free code of earlier revisions.
  std::unique_ptr<FaultInjector> faults_;
  std::vector<FaultInjector::Held> released_;  // collect_due scratch, reused
  // Identifier → slot index.  Hashed: the send path pays O(1) per lookup
  // instead of a red-black descent.  Never iterated (order_ is the canonical
  // iteration order), so the unordered layout cannot leak into trajectories.
  std::unordered_map<Id, std::size_t, IdHash> index_;
  std::vector<Slot> slots_;        // dense storage; holes after removal
  // Canonical scheduling order: live slot indices, ascending by node id,
  // maintained by sorted insert/erase (never rebuilt from map/hash
  // iteration).  Every scheduler draws from this order, so trajectories are
  // a function of (node set, channel contents, seed) alone — bit-identical
  // across platforms, stdlibs, and join/leave histories that reach the same
  // state.
  std::vector<std::size_t> order_;
  // Live identifiers, ascending: ids_sorted_[rank] == slots_[order_[rank]]'s
  // id.  Maintained by the same sorted insert/erase as order_, so id_span()
  // hands out the canonical order without allocating.
  std::vector<Id> ids_sorted_;
  // Pending messages per order_-rank, Fenwick-indexed: the async scheduler
  // finds the pick-th pending message by binary descent in O(log n).  Only
  // kRandomAsync pays for it (use_fenwick_); membership changes mark it
  // dirty and ensure_fenwick rebuilds it lazily, so bulk loads skip the old
  // O(n)-per-add rebuild entirely.
  util::Fenwick pending_by_rank_;
  bool use_fenwick_ = false;
  bool fenwick_dirty_ = true;
  std::size_t pending_total_ = 0;  // sum of all channel sizes, kept in step
  std::vector<std::int64_t> rank_counts_;  // rebuild scratch, reused
  std::vector<EngineLane> lanes_;  // per-shard buffers, reused across rounds
  EngineCounters counters_;
  Metrics metrics_;
  HookId next_hook_id_ = 1;
  std::vector<std::pair<HookId, DeliveryHook>> delivery_hooks_;
  std::vector<std::pair<HookId, DeliveryHook>> send_hooks_;
  std::vector<std::pair<HookId, RoundHook>> round_hooks_;
  std::vector<std::vector<Message>> arrivals_;  // per-slot round snapshots
  struct Timer {
    Id id;
    std::uint64_t tag;
  };
  // Armed timers, keyed by due round; each bucket holds arming order and is
  // id-sorted (stably) at fire time for the canonical order.
  std::map<std::uint64_t, std::vector<Timer>> timers_;
  std::size_t timer_count_ = 0;
  std::vector<Timer> due_timers_;  // fire_due_timers scratch, reused
};

// --- Context inline fast paths ---------------------------------------------
// send() is the hottest engine call (every protocol action fires several);
// in a lane it is one push_back, with the real dispatch deferred to the
// merge.  Defined here, after Engine, so the calls inline into protocol code.

inline void Context::send(Id to, const Message& message) {
  if (lane_ != nullptr) {
    lane_->outbox.push_back(PendingSend{from_slot_, to, message});
    return;
  }
  engine_.dispatch_send(from_slot_, to, message);
}

inline util::Rng& Context::rng() { return *rng_; }

inline std::uint64_t Context::round() const noexcept {
  return engine_.counters_.rounds;
}

inline void Context::schedule_timer(std::uint32_t delay, std::uint64_t tag) {
  if (lane_ != nullptr) {
    lane_->timer_arms.push_back(EngineLane::TimerArm{self_, delay, tag});
    return;
  }
  engine_.schedule_timer(self_, delay, tag);
}

}  // namespace sssw::sim
