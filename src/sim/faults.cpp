#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sssw::sim {

void FaultPlan::validate() const {
  const auto is_probability = [](double p) { return p >= 0.0 && p < 1.0; };
  SSSW_CHECK_MSG(is_probability(duplicate_probability),
                 "FaultPlan::duplicate_probability must lie in [0, 1)");
  SSSW_CHECK_MSG(is_probability(delay_probability),
                 "FaultPlan::delay_probability must lie in [0, 1)");
  SSSW_CHECK_MSG(is_probability(replay_probability),
                 "FaultPlan::replay_probability must lie in [0, 1)");
  SSSW_CHECK_MSG(delay_probability == 0.0 || max_delay_rounds >= 1,
                 "FaultPlan::max_delay_rounds must be >= 1 when delay is on");
  SSSW_CHECK_MSG(replay_probability == 0.0 || replay_history >= 1,
                 "FaultPlan::replay_history must be >= 1 when replay is on");
  SSSW_CHECK_MSG(partition_rounds == 0 || std::isfinite(partition_pivot),
                 "FaultPlan::partition_pivot must be finite");
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint32_t fixed_delay)
    : plan_(plan), fixed_delay_(fixed_delay) {
  plan_.validate();
  if (plan_.replay_history > 0) history_.reserve(plan_.replay_history);
}

bool FaultInjector::partition_crosses(Id from, Id to,
                                      std::uint64_t round) const noexcept {
  if (plan_.partition_rounds == 0 || !is_node_id(from)) return false;
  if (round < plan_.partition_start ||
      round >= plan_.partition_start + plan_.partition_rounds)
    return false;
  return (from < plan_.partition_pivot) != (to < plan_.partition_pivot);
}

FaultInjector::SendDecision FaultInjector::on_send(Id from, Id to,
                                                   const Message& message,
                                                   std::uint64_t round,
                                                   util::Rng& rng) {
  SendDecision decision;

  // The draw order below is fixed and every draw is gated on its dimension
  // being switched on — the determinism contract of doc/FAULTS.md.
  if (partition_crosses(from, to, round)) {
    decision.partition_dropped = true;
  } else {
    decision.deliver_now = true;
    if (plan_.duplicate_probability > 0.0 &&
        rng.bernoulli(plan_.duplicate_probability))
      decision.duplicated = true;
    // Each surviving copy draws its own delay, so a duplicated message can
    // arrive split across rounds (the classic at-least-once reordering).
    const auto maybe_hold = [&](bool& deliver_flag) {
      std::uint64_t extra = fixed_delay_;
      if (plan_.delay_probability > 0.0 && rng.bernoulli(plan_.delay_probability))
        extra += 1 + rng.below(plan_.max_delay_rounds);
      if (extra == 0) return;
      // A message sent during round r sits in its channel at the end of r
      // and is drained in round r+1 (release when the counter reads r).
      // `extra` shifts that release point.
      held_.push_back(Held{round + extra, to, message});
      ++decision.held;
      deliver_flag = false;
    };
    maybe_hold(decision.deliver_now);
    if (decision.duplicated) {
      decision.duplicate_now = true;
      maybe_hold(decision.duplicate_now);
    }
  }

  if (plan_.replay_history > 0) {
    // Record then maybe replay, so a message can replay itself — the
    // tightest duplicate-at-a-distance.
    if (history_.size() < plan_.replay_history) {
      history_.push_back(Held{0, to, message});
    } else {
      history_[history_next_] = Held{0, to, message};
      history_next_ = (history_next_ + 1) % plan_.replay_history;
    }
    if (plan_.replay_probability > 0.0 &&
        rng.bernoulli(plan_.replay_probability)) {
      const Held& past = history_[rng.below(history_.size())];
      decision.has_replay = true;
      decision.replay_to = past.to;
      decision.replay_message = past.message;
    }
  }
  return decision;
}

void FaultInjector::collect_due(std::uint64_t round_counter,
                                std::vector<Held>& out) {
  out.clear();
  if (held_.empty()) return;
  std::size_t kept = 0;
  for (Held& held : held_) {
    if (held.due <= round_counter) {
      out.push_back(held);
    } else {
      held_[kept++] = held;
    }
  }
  held_.resize(kept);
}

std::size_t FaultInjector::purge_references(Id id) {
  const auto references = [id](const Held& held) {
    return held.to == id || held.message.id1 == id || held.message.id2 == id ||
           held.message.id3 == id;
  };
  const std::size_t before = held_.size();
  std::erase_if(held_, references);
  // History entries mentioning the departed node must go too, or a later
  // replay would resurrect a reference that fail-stop semantics already
  // erased.
  // Compacting the ring buffer reorders nothing that matters: replay picks
  // uniformly, and the buffer refills in append order before overwriting.
  std::erase_if(history_, references);
  history_next_ = 0;
  return before - held_.size();
}

}  // namespace sssw::sim
