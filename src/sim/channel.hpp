// channel.hpp — a node's incoming channel C (§II.B).
//
// The channel has unbounded capacity, loses no messages, and does not
// preserve transmission order.  Receipt order is a scheduler policy:
// shuffled (models fair receipt), FIFO, or LIFO (adversarial but still fair
// under round-based draining, since every round drains the whole snapshot).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/message.hpp"
#include "util/rng.hpp"

namespace sssw::sim {

enum class ReceiptOrder : std::uint8_t {
  kShuffled,  ///< uniformly random order (the paper's fair receipt)
  kFifo,      ///< oldest first
  kLifo,      ///< newest first (adversarial)
};

class Channel {
 public:
  void push(const Message& message) { pending_.push_back(message); }

  bool empty() const noexcept { return pending_.empty(); }
  std::size_t size() const noexcept { return pending_.size(); }

  /// Moves all currently pending messages into `out` (cleared first),
  /// ordered per `order`.  Messages pushed after the call belong to the
  /// next snapshot — this gives synchronous-round semantics.
  void drain(std::vector<Message>& out, ReceiptOrder order, util::Rng& rng);

  /// Removes and returns one message per `order`; channel must be non-empty.
  Message take_one(ReceiptOrder order, util::Rng& rng);

  /// Moves each pending message into `out` (cleared first) independently
  /// with probability `p`, in shuffled order; the rest stay pending.  Models
  /// slow channels (SchedulerKind::kDelayedRandom).
  void drain_sample(std::vector<Message>& out, double p, util::Rng& rng);

  void clear() noexcept { pending_.clear(); }

  /// Read-only view of the pending messages (graph-view extraction uses the
  /// "implicit links given by the messages in the channel" of Def. 4.2).
  const std::vector<Message>& pending() const noexcept { return pending_; }

  /// Removes every pending message that references `id` in either payload
  /// slot; returns how many were removed.  Used by fail-stop leave: the
  /// departed node's temporary (in-flight) links disappear with it.
  std::size_t purge_references(Id id);

 private:
  std::vector<Message> pending_;
};

}  // namespace sssw::sim
