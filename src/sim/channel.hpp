// channel.hpp — a node's incoming channel C (§II.B).
//
// The channel has unbounded capacity, loses no messages, and does not
// preserve transmission order.  Receipt order is a scheduler policy:
// shuffled (models fair receipt), FIFO, or LIFO (adversarial but still fair
// under round-based draining, since every round drains the whole snapshot).
//
// Storage is a head-indexed buffer: live messages occupy [head_, buf_.size())
// of one contiguous vector, so push and take_one(kFifo) are amortized O(1)
// (the consumed prefix is compacted away once it dominates the storage) and
// pending() stays a contiguous read-only view.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/message.hpp"
#include "util/rng.hpp"

namespace sssw::sim {

enum class ReceiptOrder : std::uint8_t {
  kShuffled,  ///< uniformly random order (the paper's fair receipt)
  kFifo,      ///< oldest first
  kLifo,      ///< newest first (adversarial)
};

class Channel {
 public:
  void push(const Message& message) { buf_.push_back(message); }

  bool empty() const noexcept { return head_ == buf_.size(); }
  std::size_t size() const noexcept { return buf_.size() - head_; }

  /// Moves all currently pending messages into `out` (cleared first),
  /// ordered per `order`.  Messages pushed after the call belong to the
  /// next snapshot — this gives synchronous-round semantics.
  void drain(std::vector<Message>& out, ReceiptOrder order, util::Rng& rng);

  /// Removes and returns one message per `order`; channel must be non-empty.
  /// kFifo is amortized O(1): the head index advances instead of erasing.
  Message take_one(ReceiptOrder order, util::Rng& rng);

  /// Moves each pending message into `out` (cleared first) independently
  /// with probability `p`, in shuffled order; the rest stay pending.  Models
  /// slow channels (SchedulerKind::kDelayedRandom).
  void drain_sample(std::vector<Message>& out, double p, util::Rng& rng);

  void clear() noexcept {
    buf_.clear();
    head_ = 0;
  }

  /// Read-only view of the pending messages, oldest first (graph-view
  /// extraction uses the "implicit links given by the messages in the
  /// channel" of Def. 4.2).
  std::span<const Message> pending() const noexcept {
    return {buf_.data() + head_, size()};
  }

  /// Removes every pending message that references `id` in any payload
  /// slot; returns how many were removed.  Used by fail-stop leave: the
  /// departed node's temporary (in-flight) links disappear with it.
  std::size_t purge_references(Id id);

 private:
  /// Drops the consumed prefix once it outweighs the live suffix, keeping
  /// take_one(kFifo) amortized O(1) without unbounded storage growth.
  void maybe_compact();

  std::vector<Message> buf_;  // live messages are [head_, buf_.size())
  std::size_t head_ = 0;
};

}  // namespace sssw::sim
