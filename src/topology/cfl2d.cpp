#include "topology/cfl2d.hpp"

namespace sssw::topology {

Cfl2dProcess::Cfl2dProcess(std::size_t side, double epsilon, util::Rng rng)
    : torus_(side), epsilon_(epsilon), rng_(rng),
      position_(torus_.vertex_count()), age_(torus_.vertex_count(), 0) {
  for (graph::Vertex v = 0; v < torus_.vertex_count(); ++v) position_[v] = v;
}

void Cfl2dProcess::step() {
  const auto side = static_cast<std::uint32_t>(torus_.side());
  for (graph::Vertex node = 0; node < position_.size(); ++node) {
    TorusPoint p = torus_.point_of(position_[node]);
    // ±1 in each dimension, each direction with probability 1/2.
    p.x = rng_.coin() ? (p.x + 1) % side : (p.x + side - 1) % side;
    p.y = rng_.coin() ? (p.y + 1) % side : (p.y + side - 1) % side;
    position_[node] = torus_.vertex_of(p);
    ++age_[node];
    if (rng_.bernoulli(core::forget_probability(age_[node], epsilon_))) {
      position_[node] = node;  // token returns home
      age_[node] = 0;
      ++forgets_;
    }
  }
  ++steps_;
}

void Cfl2dProcess::run(std::size_t steps) {
  for (std::size_t s = 0; s < steps; ++s) step();
}

std::vector<std::size_t> Cfl2dProcess::link_lengths() const {
  std::vector<std::size_t> lengths;
  lengths.reserve(position_.size());
  for (graph::Vertex node = 0; node < position_.size(); ++node)
    lengths.push_back(torus_.distance(node, position_[node]));
  return lengths;
}

graph::Digraph Cfl2dProcess::graph() const {
  graph::Digraph g = make_torus_lattice(torus_.side());
  for (graph::Vertex node = 0; node < position_.size(); ++node)
    if (position_[node] != node) g.add_edge_unique(node, position_[node]);
  return g;
}

}  // namespace sssw::topology
