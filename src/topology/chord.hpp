// chord.hpp — a Chord-like structured overlay (finger-table ring).
//
// The paper's introduction positions small-world overlays against structured
// overlays (CAN/Pastry/Chord): comparable polylogarithmic routing but, the
// paper argues, better robustness because the structure is randomized rather
// than uniform.  This static finger-table ring is the comparator for E5
// (routing hops) and E9 (robustness under node failures).
#pragma once

#include <cstddef>

#include "graph/digraph.hpp"

namespace sssw::topology {

/// Vertex i occupies ring rank i; edges to (i+1) mod n and to
/// (i + 2^k) mod n for every 2^k < n — the classic finger table.
graph::Digraph make_chord_ring(std::size_t n);

}  // namespace sssw::topology
