#include "topology/kleinberg.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace sssw::topology {

std::vector<double> build_harmonic_cdf(std::size_t max_distance, double exponent) {
  SSSW_CHECK(max_distance >= 1);
  std::vector<double> cdf(max_distance);
  double total = 0.0;
  for (std::size_t d = 1; d <= max_distance; ++d) {
    total += std::pow(static_cast<double>(d), -exponent);
    cdf[d - 1] = total;
  }
  for (double& value : cdf) value /= total;
  cdf.back() = 1.0;  // guard against rounding
  return cdf;
}

std::size_t sample_harmonic_distance(const std::vector<double>& cdf, util::Rng& rng) {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<std::size_t>(it - cdf.begin()) + 1;
}

graph::Digraph make_kleinberg_ring(std::size_t n, util::Rng& rng,
                                   const KleinbergOptions& options) {
  graph::Digraph g(n);
  if (n < 2) return g;
  for (graph::Vertex i = 0; i < n; ++i) {
    g.add_edge(i, static_cast<graph::Vertex>((i + 1) % n));
    g.add_edge(i, static_cast<graph::Vertex>((i + n - 1) % n));
  }
  if (n < 4) return g;
  const auto cdf = build_harmonic_cdf(n / 2, options.exponent);
  for (graph::Vertex i = 0; i < n; ++i) {
    for (std::size_t q = 0; q < options.long_links_per_node; ++q) {
      const std::size_t distance = sample_harmonic_distance(cdf, rng);
      const bool clockwise = rng.coin();
      const std::size_t target =
          clockwise ? (i + distance) % n : (i + n - distance % n) % n;
      if (target != i) g.add_edge_unique(i, static_cast<graph::Vertex>(target));
    }
  }
  return g;
}

}  // namespace sssw::topology
