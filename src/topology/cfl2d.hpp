// cfl2d.hpp — the move-and-forget process on the 2-D torus (the paper's
// §V future-work direction, at the process level).
//
// The CFL process [4] is defined on Zᵏ: every node owns a token that
// performs a lattice random walk ("altering its position in the lattice by
// ±1 in each dimension with probability 1/2") and is forgotten with the
// *dimension-independent* probability φ(age).  In 2-D the stationary link
// lengths follow the 2-harmonic law P(target) ∝ 1/dist², i.e.
// P(length = d) ∝ N(d)/d² ≈ const/d — which is what makes greedy routing on
// the torus polylogarithmic (Kleinberg's k = 2 case).
#pragma once

#include <cstdint>
#include <vector>

#include "core/forget.hpp"
#include "graph/digraph.hpp"
#include "topology/torus2d.hpp"
#include "util/rng.hpp"

namespace sssw::topology {

class Cfl2dProcess {
 public:
  Cfl2dProcess(std::size_t side, double epsilon, util::Rng rng);

  const Torus2d& torus() const noexcept { return torus_; }
  std::size_t size() const noexcept { return position_.size(); }

  /// One synchronous step: every token moves ±1 in each dimension (each
  /// direction with probability 1/2, independently) and may be forgotten.
  void step();
  void run(std::size_t steps);

  graph::Vertex token_position(graph::Vertex node) const noexcept {
    return position_[node];
  }
  core::Age age(graph::Vertex node) const noexcept { return age_[node]; }

  /// L1 torus distance from each node to its token.
  std::vector<std::size_t> link_lengths() const;

  /// Torus lattice + current long-range links.
  graph::Digraph graph() const;

  std::uint64_t steps_taken() const noexcept { return steps_; }
  std::uint64_t total_forgets() const noexcept { return forgets_; }

 private:
  Torus2d torus_;
  double epsilon_;
  util::Rng rng_;
  std::vector<graph::Vertex> position_;
  std::vector<core::Age> age_;
  std::uint64_t steps_ = 0;
  std::uint64_t forgets_ = 0;
};

}  // namespace sssw::topology
