#include "topology/stationary.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sssw::topology {

std::vector<double> build_cfl_stationary_cdf(std::size_t max_distance, double epsilon) {
  SSSW_CHECK(max_distance >= 1);
  std::vector<double> cdf(max_distance);
  double total = 0.0;
  for (std::size_t d = 1; d <= max_distance; ++d) {
    const auto x = static_cast<double>(d);
    total += 1.0 / (x * std::pow(std::log(x + std::exp(1.0)), 1.0 + epsilon));
    cdf[d - 1] = total;
  }
  for (double& value : cdf) value /= total;
  cdf.back() = 1.0;
  return cdf;
}

graph::Digraph make_stationary_smallworld_ring(std::size_t n, util::Rng& rng,
                                               const StationaryOptions& options) {
  graph::Digraph g(n);
  if (n < 2) return g;
  for (graph::Vertex i = 0; i < n; ++i) {
    g.add_edge(i, static_cast<graph::Vertex>((i + 1) % n));
    g.add_edge(i, static_cast<graph::Vertex>((i + n - 1) % n));
  }
  if (n < 4) return g;
  const auto cdf = build_cfl_stationary_cdf(n / 2, options.epsilon);
  for (graph::Vertex i = 0; i < n; ++i) {
    for (std::size_t q = 0; q < options.links_per_node; ++q) {
      const double u = rng.uniform();
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
      const std::size_t distance = static_cast<std::size_t>(it - cdf.begin()) + 1;
      const std::size_t target =
          rng.coin() ? (i + distance) % n : (i + n - distance) % n;
      if (target != i) g.add_edge_unique(i, static_cast<graph::Vertex>(target));
    }
  }
  return g;
}

}  // namespace sssw::topology
