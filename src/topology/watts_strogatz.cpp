#include "topology/watts_strogatz.hpp"

#include "util/check.hpp"

namespace sssw::topology {

graph::Digraph make_watts_strogatz(std::size_t n, util::Rng& rng,
                                   const WattsStrogatzOptions& options) {
  SSSW_CHECK_MSG(options.k % 2 == 0, "Watts-Strogatz k must be even");
  graph::Digraph g(n);
  if (n < 2) return g;
  const std::size_t half_k = std::min(options.k / 2, (n - 1) / 2);
  for (graph::Vertex i = 0; i < n; ++i) {
    for (std::size_t offset = 1; offset <= half_k; ++offset) {
      graph::Vertex target = static_cast<graph::Vertex>((i + offset) % n);
      if (rng.bernoulli(options.beta)) {
        // Rewire to a uniform non-self target, avoiding duplicate edges.
        for (int attempts = 0; attempts < 16; ++attempts) {
          const auto candidate = static_cast<graph::Vertex>(rng.below(n));
          if (candidate != i && !g.has_edge(i, candidate)) {
            target = candidate;
            break;
          }
        }
      }
      g.add_edge_unique(i, target);
      g.add_edge_unique(target, i);
    }
  }
  return g;
}

}  // namespace sssw::topology
