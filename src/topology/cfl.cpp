#include "topology/cfl.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sssw::topology {

CflProcess::CflProcess(std::size_t n, double epsilon, util::Rng rng)
    : epsilon_(epsilon), rng_(rng), position_(n), age_(n, 0) {
  SSSW_CHECK(n >= 2);
  for (std::size_t i = 0; i < n; ++i) position_[i] = i;  // tokens start at home
}

void CflProcess::step() {
  const std::size_t n = position_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Move: ±1 on the ring, each with probability 1/2.
    if (rng_.coin()) {
      position_[i] = (position_[i] + 1) % n;
    } else {
      position_[i] = (position_[i] + n - 1) % n;
    }
    ++age_[i];
    // Forget: token returns home, age resets.
    if (rng_.bernoulli(core::forget_probability(age_[i], epsilon_))) {
      position_[i] = i;
      age_[i] = 0;
      ++forgets_;
    }
  }
  ++steps_;
}

void CflProcess::run(std::size_t steps) {
  for (std::size_t s = 0; s < steps; ++s) step();
}

std::vector<std::size_t> CflProcess::link_lengths() const {
  const std::size_t n = position_.size();
  std::vector<std::size_t> lengths;
  lengths.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t direct =
        position_[i] > i ? position_[i] - i : i - position_[i];
    lengths.push_back(std::min(direct, n - direct));
  }
  return lengths;
}

graph::Digraph CflProcess::graph() const {
  const std::size_t n = position_.size();
  graph::Digraph g(n);
  for (graph::Vertex i = 0; i < n; ++i) {
    g.add_edge(i, static_cast<graph::Vertex>((i + 1) % n));
    g.add_edge(i, static_cast<graph::Vertex>((i + n - 1) % n));
    if (position_[i] != i)
      g.add_edge_unique(i, static_cast<graph::Vertex>(position_[i]));
  }
  return g;
}

}  // namespace sssw::topology
