#include "topology/torus2d.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sssw::topology {

Torus2d::Torus2d(std::size_t side) : side_(side) {
  SSSW_CHECK_MSG(side >= 2, "torus side must be at least 2");
}

graph::Vertex Torus2d::vertex_of(TorusPoint p) const noexcept {
  return static_cast<graph::Vertex>(static_cast<std::size_t>(p.y) * side_ + p.x);
}

TorusPoint Torus2d::point_of(graph::Vertex v) const noexcept {
  return TorusPoint{static_cast<std::uint32_t>(v % side_),
                    static_cast<std::uint32_t>(v / side_)};
}

std::size_t Torus2d::distance(graph::Vertex a, graph::Vertex b) const noexcept {
  const TorusPoint pa = point_of(a);
  const TorusPoint pb = point_of(b);
  const std::size_t dx = pa.x > pb.x ? pa.x - pb.x : pb.x - pa.x;
  const std::size_t dy = pa.y > pb.y ? pa.y - pb.y : pb.y - pa.y;
  return std::min(dx, side_ - dx) + std::min(dy, side_ - dy);
}

std::array<graph::Vertex, 4> Torus2d::neighbors(graph::Vertex v) const noexcept {
  const TorusPoint p = point_of(v);
  const auto s = static_cast<std::uint32_t>(side_);
  return {
      vertex_of({static_cast<std::uint32_t>((p.x + 1) % s), p.y}),
      vertex_of({static_cast<std::uint32_t>((p.x + s - 1) % s), p.y}),
      vertex_of({p.x, static_cast<std::uint32_t>((p.y + 1) % s)}),
      vertex_of({p.x, static_cast<std::uint32_t>((p.y + s - 1) % s)}),
  };
}

graph::Digraph make_torus_lattice(std::size_t side) {
  const Torus2d torus(side);
  graph::Digraph g(torus.vertex_count());
  for (graph::Vertex v = 0; v < torus.vertex_count(); ++v)
    for (const graph::Vertex next : torus.neighbors(v)) g.add_edge_unique(v, next);
  return g;
}

graph::Digraph make_kleinberg_torus(std::size_t side, util::Rng& rng,
                                    const Kleinberg2dOptions& options) {
  const Torus2d torus(side);
  graph::Digraph g = make_torus_lattice(side);

  // Bucket all nonzero offsets from a reference origin by torus distance;
  // translation invariance makes the buckets valid for every origin.
  const std::size_t max_distance = 2 * (side / 2);
  std::vector<std::vector<TorusPoint>> offsets_at(max_distance + 1);
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      if (x == 0 && y == 0) continue;
      const std::size_t d =
          torus.distance(torus.vertex_of({0, 0}), torus.vertex_of({x, y}));
      offsets_at[d].push_back({x, y});
    }
  }
  // CDF over distance with weight count(d)·d^(−α).
  std::vector<double> cdf(max_distance + 1, 0.0);
  double total = 0.0;
  for (std::size_t d = 1; d <= max_distance; ++d) {
    total += static_cast<double>(offsets_at[d].size()) *
             std::pow(static_cast<double>(d), -options.exponent);
    cdf[d] = total;
  }
  SSSW_CHECK(total > 0.0);

  for (graph::Vertex v = 0; v < torus.vertex_count(); ++v) {
    const TorusPoint p = torus.point_of(v);
    for (std::size_t q = 0; q < options.long_links_per_node; ++q) {
      const double u = rng.uniform() * total;
      const auto it = std::lower_bound(cdf.begin() + 1, cdf.end(), u);
      const auto d = static_cast<std::size_t>(it - cdf.begin());
      const auto& bucket = offsets_at[std::min(d, max_distance)];
      if (bucket.empty()) continue;
      const TorusPoint offset = bucket[rng.below(bucket.size())];
      const auto s = static_cast<std::uint32_t>(side);
      const graph::Vertex target = torus.vertex_of(
          {static_cast<std::uint32_t>((p.x + offset.x) % s),
           static_cast<std::uint32_t>((p.y + offset.y) % s)});
      if (target != v) g.add_edge_unique(v, target);
    }
  }
  return g;
}

}  // namespace sssw::topology
