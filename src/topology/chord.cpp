#include "topology/chord.hpp"

namespace sssw::topology {

graph::Digraph make_chord_ring(std::size_t n) {
  graph::Digraph g(n);
  if (n < 2) return g;
  for (graph::Vertex i = 0; i < n; ++i) {
    g.add_edge(i, static_cast<graph::Vertex>((i + 1) % n));
    for (std::size_t stride = 2; stride < n; stride *= 2)
      g.add_edge_unique(i, static_cast<graph::Vertex>((i + stride) % n));
  }
  return g;
}

}  // namespace sssw::topology
