#include "topology/initial_states.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace sssw::topology {

using core::NodeInit;
using sim::Id;
using sim::kNegInf;
using sim::kPosInf;

const char* to_string(InitialShape shape) noexcept {
  switch (shape) {
    case InitialShape::kSortedRing:
      return "sorted-ring";
    case InitialShape::kSortedList:
      return "sorted-list";
    case InitialShape::kRandomChain:
      return "random-chain";
    case InitialShape::kStar:
      return "star";
    case InitialShape::kRandomTree:
      return "random-tree";
    case InitialShape::kLongJumpChain:
      return "long-jump-chain";
    case InitialShape::kBridgedChains:
      return "bridged-chains";
    case InitialShape::kScrambledLrl:
      return "scrambled-lrl";
  }
  return "unknown";
}

namespace {

/// Stores a directed link from → to in the only slot that can hold it
/// (l if to < from, r if to > from).  Keeps the nearer endpoint if the slot
/// is already occupied — this only tightens connectivity.
void store_link(NodeInit& from, Id to) {
  if (to < from.id) {
    if (from.l == kNegInf || to > from.l) from.l = to;
  } else if (to > from.id) {
    if (from.r == kPosInf || to < from.r) from.r = to;
  }
}

}  // namespace

std::vector<NodeInit> make_initial_state(InitialShape shape, std::vector<Id> ids,
                                         util::Rng& rng,
                                         const InitialStateOptions& options) {
  std::sort(ids.begin(), ids.end());
  const std::size_t n = ids.size();
  std::vector<NodeInit> inits;
  inits.reserve(n);
  for (const Id id : ids) inits.emplace_back(id);

  switch (shape) {
    case InitialShape::kSortedRing: {
      for (std::size_t i = 0; i < n; ++i) {
        inits[i].l = i == 0 ? kNegInf : ids[i - 1];
        inits[i].r = i + 1 == n ? kPosInf : ids[i + 1];
      }
      if (n >= 2) {
        inits.front().ring = ids.back();
        inits.back().ring = ids.front();
      }
      break;
    }
    case InitialShape::kSortedList: {
      for (std::size_t i = 0; i < n; ++i) {
        inits[i].l = i == 0 ? kNegInf : ids[i - 1];
        inits[i].r = i + 1 == n ? kPosInf : ids[i + 1];
      }
      break;
    }
    case InitialShape::kRandomChain: {
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      util::shuffle(order, rng);
      for (std::size_t k = 0; k + 1 < n; ++k)
        store_link(inits[order[k]], ids[order[k + 1]]);
      break;
    }
    case InitialShape::kStar: {
      if (n >= 2) {
        const std::size_t hub = rng.below(n);
        for (std::size_t i = 0; i < n; ++i)
          if (i != hub) store_link(inits[i], ids[hub]);
      }
      break;
    }
    case InitialShape::kRandomTree: {
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      util::shuffle(order, rng);
      for (std::size_t k = 1; k < n; ++k) {
        const std::size_t parent = order[rng.below(k)];
        store_link(inits[order[k]], ids[parent]);
      }
      break;
    }
    case InitialShape::kLongJumpChain: {
      const std::size_t jump = std::max<std::size_t>(1, n / 4);
      for (std::size_t i = 0; i < n; ++i) {
        if (i + jump < n) {
          store_link(inits[i], ids[i + jump]);
        } else if (i + 1 < n) {
          store_link(inits[i], ids[i + 1]);  // stitch the strand tails together
        }
      }
      break;
    }
    case InitialShape::kBridgedChains: {
      const std::size_t half = n / 2;
      for (std::size_t i = 0; i + 1 < half; ++i) store_link(inits[i], ids[i + 1]);
      for (std::size_t i = half; i + 1 < n; ++i) store_link(inits[i], ids[i + 1]);
      if (half > 0 && half < n) {
        // One long-range link bridges the two chains; probing must detect
        // that this is the only connection and materialise list edges.
        inits[rng.below(half)].lrl = ids[half + rng.below(n - half)];
      }
      break;
    }
    case InitialShape::kScrambledLrl: {
      for (std::size_t i = 0; i < n; ++i) {
        inits[i].l = i == 0 ? kNegInf : ids[i - 1];
        inits[i].r = i + 1 == n ? kPosInf : ids[i + 1];
        inits[i].lrl = ids[rng.below(n)];
      }
      if (n >= 2) {
        inits.front().ring = ids.back();
        inits.back().ring = ids.front();
      }
      break;
    }
  }

  if (options.randomize_lrl && shape != InitialShape::kScrambledLrl &&
      shape != InitialShape::kBridgedChains && n > 0) {
    for (NodeInit& init : inits) init.lrl = ids[rng.below(n)];
  }
  return inits;
}

}  // namespace sssw::topology
