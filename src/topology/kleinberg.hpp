// kleinberg.hpp — Kleinberg's 1-D small-world construction (STOC 2000).
//
// A ring of n nodes, each with its two lattice neighbours plus q long-range
// links whose ring distance d is sampled from the 1-harmonic distribution
// P(d) ∝ 1/d.  This is the static construction whose navigability the
// protocol's stabilized state should match (experiment E5's gold standard).
#pragma once

#include <cstddef>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace sssw::topology {

struct KleinbergOptions {
  std::size_t long_links_per_node = 1;
  /// Harmonic exponent; 1 is navigable, other values degrade greedy routing.
  double exponent = 1.0;
};

/// Vertex i occupies ring rank i; edges i→i±1 plus sampled long links.
graph::Digraph make_kleinberg_ring(std::size_t n, util::Rng& rng,
                                   const KleinbergOptions& options = {});

/// Samples a ring distance in [1, n/2] from P(d) ∝ d^(−exponent) by
/// inverse-CDF over the precomputed table in `cdf` (see build_harmonic_cdf).
std::size_t sample_harmonic_distance(const std::vector<double>& cdf, util::Rng& rng);

/// Cumulative distribution of P(d) ∝ d^(−exponent), d = 1..max_distance.
std::vector<double> build_harmonic_cdf(std::size_t max_distance, double exponent);

}  // namespace sssw::topology
