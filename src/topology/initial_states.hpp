// initial_states.hpp — weakly connected initial configurations.
//
// Self-stabilization must be demonstrated from *any* weakly connected state,
// so the convergence experiments sweep a family of adversarial shapes.  A
// node's stored state is (l, r, lrl, ring) with l < id < r, so "shapes" are
// assignments of those variables; weak connectivity is guaranteed by
// construction in every generator here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/node.hpp"
#include "util/rng.hpp"

namespace sssw::topology {

enum class InitialShape : std::uint8_t {
  kSortedRing,    ///< the legal final state (sanity: convergence in 0 rounds)
  kSortedList,    ///< list correct, ring edges missing (Phase 3 only)
  kRandomChain,   ///< a chain in random permutation order: maximal disorder
  kStar,          ///< everyone points at one random hub
  kRandomTree,    ///< random recursive tree over a random order
  kLongJumpChain, ///< chain i → i+⌈n/4⌉ stitched connected by chain links
  kBridgedChains, ///< two separate sorted chains bridged by one lrl link
  kScrambledLrl,  ///< sorted ring but every lrl points somewhere random
};

inline constexpr InitialShape kAllShapes[] = {
    InitialShape::kSortedRing,   InitialShape::kSortedList,
    InitialShape::kRandomChain,  InitialShape::kStar,
    InitialShape::kRandomTree,   InitialShape::kLongJumpChain,
    InitialShape::kBridgedChains, InitialShape::kScrambledLrl,
};

const char* to_string(InitialShape shape) noexcept;

struct InitialStateOptions {
  /// Additionally point every node's lrl at a uniformly random node (keeps
  /// weak connectivity, adds clutter the protocol must digest).
  bool randomize_lrl = false;
};

/// Generates one initial configuration over the given ids (need not be
/// sorted; they are sorted internally).  The result is always weakly
/// connected in CC.
std::vector<core::NodeInit> make_initial_state(InitialShape shape,
                                               std::vector<sim::Id> ids,
                                               util::Rng& rng,
                                               const InitialStateOptions& options = {});

}  // namespace sssw::topology
