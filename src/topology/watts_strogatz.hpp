// watts_strogatz.hpp — the Watts–Strogatz rewiring model (Nature 1998).
//
// A ring lattice where each node connects to its k nearest neighbours; each
// lattice edge is rewired to a uniform random target with probability beta.
// Interpolates between a regular lattice (beta = 0) and a random graph
// (beta = 1); the small-world regime is the sweet spot where clustering is
// still lattice-like but path lengths are already random-graph-like.
#pragma once

#include <cstddef>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace sssw::topology {

struct WattsStrogatzOptions {
  std::size_t k = 4;    ///< even; k/2 neighbours on each side
  double beta = 0.1;    ///< rewiring probability
};

/// Undirected in spirit: every kept/rewired edge is inserted in both
/// directions.  Vertex i occupies ring rank i.
graph::Digraph make_watts_strogatz(std::size_t n, util::Rng& rng,
                                   const WattsStrogatzOptions& options = {});

}  // namespace sssw::topology
