// torus2d.hpp — the 2-D lattice substrate (Z² with wraparound).
//
// The paper's §V names multidimensional small-world graphs as the direct
// extension; the underlying CFL process [4] is defined on Zᵏ from the start
// and φ(α) is dimension-independent.  This module provides the 2-D torus
// geometry, the 4-neighbour lattice, and Kleinberg's 2-D construction with a
// tunable harmonic exponent (his theorem: only exponent = k = 2 is
// navigable).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace sssw::topology {

struct TorusPoint {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
};

/// Geometry of a side×side torus; vertex index = y·side + x.
class Torus2d {
 public:
  explicit Torus2d(std::size_t side);

  std::size_t side() const noexcept { return side_; }
  std::size_t vertex_count() const noexcept { return side_ * side_; }

  graph::Vertex vertex_of(TorusPoint p) const noexcept;
  TorusPoint point_of(graph::Vertex v) const noexcept;

  /// L1 (Manhattan) distance with wraparound in both dimensions — the
  /// lattice distance dist_G of the paper's Fact 4.21.
  std::size_t distance(graph::Vertex a, graph::Vertex b) const noexcept;

  /// The four lattice neighbours of v.
  std::array<graph::Vertex, 4> neighbors(graph::Vertex v) const noexcept;

 private:
  std::size_t side_;
};

/// The plain 4-regular torus lattice.
graph::Digraph make_torus_lattice(std::size_t side);

struct Kleinberg2dOptions {
  std::size_t long_links_per_node = 1;
  /// Harmonic exponent α in P(v) ∝ dist(u,v)^(−α); α = 2 is navigable.
  double exponent = 2.0;
};

/// Torus lattice plus per-node long-range links sampled with
/// P(target) ∝ dist^(−α) over all other vertices.
graph::Digraph make_kleinberg_torus(std::size_t side, util::Rng& rng,
                                    const Kleinberg2dOptions& options = {});

}  // namespace sssw::topology
