// stationary.hpp — the stabilized network's long-range links at scale.
//
// The stationary law of the CFL move-and-forget process is
//     P(link length = d) ∝ 1 / (d · ln^{1+ε}(d + e))
// (harmonic with a polylog correction).  Mixing to stationarity needs ~n²
// move steps, which an in-engine simulation can afford only up to n ≈ 256;
// the large-n routing/robustness experiments (E5/E9) therefore sample links
// directly from this law.  Experiment E3 validates the substitution: at
// n ≤ 256 the in-engine protocol, the standalone CFL process, and this
// sampler agree on the length distribution (see EXPERIMENTS.md).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace sssw::topology {

struct StationaryOptions {
  double epsilon = 0.1;
  std::size_t links_per_node = 1;
};

/// CDF of P(d) ∝ 1/(d·ln^{1+ε}(d+e)) for d = 1..max_distance.
std::vector<double> build_cfl_stationary_cdf(std::size_t max_distance, double epsilon);

/// Ring (vertex index == rank, edges both directions) plus per-node
/// long-range links sampled from the CFL stationary law.
graph::Digraph make_stationary_smallworld_ring(std::size_t n, util::Rng& rng,
                                               const StationaryOptions& options = {});

}  // namespace sssw::topology
