// cfl.hpp — the Chaintreau–Fraigniaud–Lebhar move-and-forget process [4]
// on a *static* 1-D ring.
//
// This is the paper's substrate reference: each node owns a token that
// performs a ±1 random walk on the ring; the token is forgotten (sent home)
// with probability φ(age).  The node's long-range link points at the token.
// The stationary distribution of link lengths is harmonic up to polylog
// factors ("networks become navigable as nodes move and forget").
//
// Implemented standalone so that experiment E3 can validate the in-protocol
// variant (SmallWorldNode's Algorithms 3/4/9) against the pure process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/forget.hpp"
#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace sssw::topology {

class CflProcess {
 public:
  CflProcess(std::size_t n, double epsilon, util::Rng rng);

  std::size_t size() const noexcept { return position_.size(); }

  /// One synchronous step: every token moves ±1 and may be forgotten.
  void step();
  void run(std::size_t steps);

  /// Ring position of node i's token (== the endpoint of its lrl).
  std::size_t token_position(std::size_t i) const noexcept { return position_[i]; }
  core::Age age(std::size_t i) const noexcept { return age_[i]; }

  /// Ring distance from each node to its token (the link-length sample).
  std::vector<std::size_t> link_lengths() const;

  /// Ring + current long-range links as a digraph (vertex index == rank).
  graph::Digraph graph() const;

  std::uint64_t steps_taken() const noexcept { return steps_; }
  std::uint64_t total_forgets() const noexcept { return forgets_; }

 private:
  double epsilon_;
  util::Rng rng_;
  std::vector<std::size_t> position_;
  std::vector<core::Age> age_;
  std::uint64_t steps_ = 0;
  std::uint64_t forgets_ = 0;
};

}  // namespace sssw::topology
