#include "service/lookup_manager.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/node.hpp"

namespace sssw::service {

namespace {

LookupStatus status_of(core::LookupReason reason) noexcept {
  switch (reason) {
    case core::LookupReason::kNoProgress:
      return LookupStatus::kNoProgress;
    case core::LookupReason::kTargetDead:
      return LookupStatus::kTargetDead;
    case core::LookupReason::kTtlExhausted:
      return LookupStatus::kTtlExhausted;
    case core::LookupReason::kNone:
      break;
  }
  return LookupStatus::kTimeout;
}

}  // namespace

const char* to_string(LookupStatus status) noexcept {
  switch (status) {
    case LookupStatus::kSucceeded:
      return "succeeded";
    case LookupStatus::kTimeout:
      return "timeout";
    case LookupStatus::kNoProgress:
      return "no-progress";
    case LookupStatus::kTargetDead:
      return "target-dead";
    case LookupStatus::kTtlExhausted:
      return "ttl-exhausted";
  }
  return "unknown";
}

LookupMetrics::LookupMetrics(obs::Registry& registry)
    : issued(registry.counter("service.lookup.issued")),
      attempts(registry.counter("service.lookup.attempts")),
      retries(registry.counter("service.lookup.retries")),
      hedges(registry.counter("service.lookup.hedges")),
      succeeded(registry.counter("service.lookup.succeeded")),
      failed(registry.counter("service.lookup.failed")),
      stale(registry.counter("service.lookup.stale")),
      deadletter_timeout(registry.counter("service.lookup.deadletter.timeout")),
      deadletter_no_progress(
          registry.counter("service.lookup.deadletter.no-progress")),
      deadletter_target_dead(
          registry.counter("service.lookup.deadletter.target-dead")),
      deadletter_ttl(registry.counter("service.lookup.deadletter.ttl")),
      pending(registry.gauge("service.lookup.pending")),
      hops(registry.histogram("service.lookup.hops")),
      latency(registry.histogram("service.lookup.latency")) {}

LookupManager::LookupManager(core::SmallWorldNetwork& net,
                             const LookupConfig& config)
    : net_(net),
      config_(config),
      rng_(util::derive_stream(config.seed, 0x6c6f6f6b7570ull /* "lookup" */)) {
  if (config_.ttl > core::kLookupMaxTtl) config_.ttl = core::kLookupMaxTtl;
  if (config_.ttl == 0) config_.ttl = 1;
  if (config_.timeout_rounds == 0) config_.timeout_rounds = 1;
  hook_ = net_.engine().add_round_hook(
      [this](std::uint64_t round) { on_round(round); });
}

LookupManager::~LookupManager() { net_.engine().remove_round_hook(hook_); }

void LookupManager::attach_metrics(obs::Registry& registry) {
  metrics_.emplace(registry);
}

std::uint64_t LookupManager::issue(sim::Id source, sim::Id target) {
  const std::uint64_t round = net_.engine().round();
  const std::uint32_t slot = acquire_slot();
  Request& req = slots_[slot];
  req.source = source;
  req.target = target;
  req.request = next_request_++;
  req.first_issue = round;
  req.retries_used = 0;
  req.wire_attempts = 0;
  req.hedged = false;
  req.live = true;
  req.last_reason = core::LookupReason::kNone;
  req.live_seqs.clear();
  ++pending_;
  ++totals_.issued;
  if (metrics_) metrics_->issued.add();
  issue_attempt(slot, round, /*is_retry=*/false, /*is_hedge=*/false);
  return req.request;
}

void LookupManager::on_round(std::uint64_t round) {
  // Responses first, so a hit landing on its deadline round still wins.
  drain_inboxes(round);
  process_timeouts(round);
  process_hedges(round);
  process_retries(round);
  issue_load(round);
  if (metrics_) metrics_->pending.set(static_cast<double>(pending_));
}

void LookupManager::drain_inboxes(std::uint64_t round) {
  // Ascending-id drain over manager-enabled origins keeps completion order
  // canonical regardless of shard count.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < enabled_sources_.size(); ++i) {
    const sim::Id id = enabled_sources_[i];
    core::SmallWorldNode* node = net_.node(id);
    if (node == nullptr) continue;  // crashed: forget it
    enabled_sources_[kept++] = id;
    if (!node->service_enabled()) continue;
    for (const sim::Message& m : node->drain_service_inbox()) {
      const auto token = core::unpack_lookup_token(m.id3);
      if (!token) {
        ++totals_.stale;
        if (metrics_) metrics_->stale.add();
        continue;
      }
      const auto it = seq_to_slot_.find(token->seq);
      if (it == seq_to_slot_.end()) {
        // Late or duplicate response for a request that already completed.
        ++totals_.stale;
        if (metrics_) metrics_->stale.add();
        continue;
      }
      const std::uint32_t slot = it->second;
      if (m.type == core::kLookupHit) {
        const std::uint32_t hops =
            config_.ttl >= token->ttl ? config_.ttl - token->ttl : 0;
        complete(slot, /*ok=*/true, LookupStatus::kSucceeded, hops, round);
      } else {
        attempt_failed(slot, token->seq, token->reason, round);
      }
    }
  }
  enabled_sources_.resize(kept);
}

void LookupManager::process_timeouts(std::uint64_t round) {
  while (!timeout_wheel_.empty() && timeout_wheel_.begin()->first <= round) {
    const std::vector<std::uint64_t> due =
        std::move(timeout_wheel_.begin()->second);
    timeout_wheel_.erase(timeout_wheel_.begin());
    for (const std::uint64_t seq : due) {
      const auto it = seq_to_slot_.find(seq);
      if (it == seq_to_slot_.end()) continue;  // already answered
      attempt_failed(it->second, seq, core::LookupReason::kNone, round);
    }
  }
}

void LookupManager::process_hedges(std::uint64_t round) {
  while (!hedge_wheel_.empty() && hedge_wheel_.begin()->first <= round) {
    const std::vector<SlotRef> due = std::move(hedge_wheel_.begin()->second);
    hedge_wheel_.erase(hedge_wheel_.begin());
    for (const SlotRef& ref : due) {
      Request* req = slot_of(ref);
      // Hedge only while the original attempt is still out, and only once.
      if (req == nullptr || req->hedged || req->live_seqs.empty()) continue;
      req->hedged = true;
      issue_attempt(ref.first, round, /*is_retry=*/false, /*is_hedge=*/true);
    }
  }
}

void LookupManager::process_retries(std::uint64_t round) {
  while (!retry_wheel_.empty() && retry_wheel_.begin()->first <= round) {
    const std::vector<SlotRef> due = std::move(retry_wheel_.begin()->second);
    retry_wheel_.erase(retry_wheel_.begin());
    for (const SlotRef& ref : due) {
      Request* req = slot_of(ref);
      if (req == nullptr || !req->live_seqs.empty()) continue;
      issue_attempt(ref.first, round, /*is_retry=*/true, /*is_hedge=*/false);
    }
  }
}

void LookupManager::issue_load(std::uint64_t /*round*/) {
  load_accumulator_ += config_.rate;
  while (load_accumulator_ >= 1.0) {
    load_accumulator_ -= 1.0;
    const auto span = net_.engine().id_span();
    if (span.size() < 2) continue;  // credit burned: no pair to look up
    const sim::Id target = span[rng_.below(span.size())];
    const sim::Id source = sample_live(target);
    if (!std::isfinite(source)) continue;
    issue(source, target);
  }
}

std::uint32_t LookupManager::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

LookupManager::Request* LookupManager::slot_of(const SlotRef& ref) {
  Request& req = slots_[ref.first];
  if (!req.live || req.generation != ref.second) return nullptr;
  return &req;
}

void LookupManager::issue_attempt(std::uint32_t slot, std::uint64_t round,
                                  bool is_retry, bool is_hedge) {
  Request& req = slots_[slot];
  if (!net_.engine().contains(req.source)) {
    // Graceful degradation: the origin crashed mid-request, so re-home the
    // retry on a surviving node instead of letting the request starve.
    const sim::Id fallback = sample_live(req.target);
    if (!std::isfinite(fallback)) {
      complete(slot, /*ok=*/false, LookupStatus::kTimeout, 0, round);
      return;
    }
    req.source = fallback;
  }
  if (core::SmallWorldNode* node = net_.node(req.source)) {
    if (!node->service_enabled()) {
      node->enable_service();
    }
    const auto pos = std::lower_bound(enabled_sources_.begin(),
                                      enabled_sources_.end(), req.source);
    if (pos == enabled_sources_.end() || *pos != req.source) {
      enabled_sources_.insert(pos, req.source);
    }
  }
  const std::uint64_t seq = next_seq_++ & core::kLookupMaxSeq;
  const core::LookupToken token{seq, config_.ttl, core::LookupReason::kNone};
  const sim::Message msg{core::kLookup, req.target, req.source,
                         core::pack_lookup_token(token)};
  net_.engine().inject(req.source, msg);
  req.live_seqs.push_back(seq);
  seq_to_slot_.emplace(seq, slot);
  ++req.wire_attempts;
  ++totals_.attempts;
  if (metrics_) metrics_->attempts.add();
  if (is_retry) {
    ++totals_.retries;
    if (metrics_) metrics_->retries.add();
  }
  if (is_hedge) {
    ++totals_.hedges;
    if (metrics_) metrics_->hedges.add();
  }
  timeout_wheel_[round + config_.timeout_rounds].push_back(seq);
  if (config_.hedge_after > 0 && !is_hedge && !req.hedged) {
    hedge_wheel_[round + config_.hedge_after].emplace_back(slot,
                                                           req.generation);
  }
}

void LookupManager::attempt_failed(std::uint32_t slot, std::uint64_t seq,
                                   core::LookupReason reason,
                                   std::uint64_t round) {
  Request& req = slots_[slot];
  seq_to_slot_.erase(seq);
  const auto pos = std::find(req.live_seqs.begin(), req.live_seqs.end(), seq);
  if (pos != req.live_seqs.end()) req.live_seqs.erase(pos);
  if (reason != core::LookupReason::kNone) req.last_reason = reason;
  if (!req.live_seqs.empty()) return;  // a hedged sibling is still out
  if (req.retries_used < config_.max_retries) {
    ++req.retries_used;
    std::uint64_t delay = static_cast<std::uint64_t>(config_.backoff_rounds)
                          << (req.retries_used - 1);
    if (config_.backoff_jitter > 0) delay += rng_.below(config_.backoff_jitter);
    if (delay == 0) delay = 1;
    retry_wheel_[round + delay].emplace_back(slot, req.generation);
    return;
  }
  // Dead-letter with the most recent wire reason; a request that never got
  // any response back is a timeout.
  complete(slot, /*ok=*/false, status_of(req.last_reason), 0, round);
}

void LookupManager::complete(std::uint32_t slot, bool ok, LookupStatus status,
                             std::uint32_t hops, std::uint64_t round) {
  Request& req = slots_[slot];
  for (const std::uint64_t seq : req.live_seqs) seq_to_slot_.erase(seq);
  req.live_seqs.clear();
  const std::uint64_t latency = round - req.first_issue;
  if (ok) {
    ++totals_.succeeded;
    totals_.hop_sum += hops;
    totals_.latency_sum += latency;
    if (metrics_) {
      metrics_->succeeded.add();
      metrics_->hops.observe(static_cast<double>(hops));
      metrics_->latency.observe(static_cast<double>(latency));
    }
  } else {
    ++totals_.failed;
    switch (status) {
      case LookupStatus::kTimeout:
        ++totals_.deadletter_timeout;
        if (metrics_) metrics_->deadletter_timeout.add();
        break;
      case LookupStatus::kNoProgress:
        ++totals_.deadletter_no_progress;
        if (metrics_) metrics_->deadletter_no_progress.add();
        break;
      case LookupStatus::kTargetDead:
        ++totals_.deadletter_target_dead;
        if (metrics_) metrics_->deadletter_target_dead.add();
        break;
      case LookupStatus::kTtlExhausted:
        ++totals_.deadletter_ttl;
        if (metrics_) metrics_->deadletter_ttl.add();
        break;
      case LookupStatus::kSucceeded:
        break;
    }
    if (metrics_) metrics_->failed.add();
  }
  if (completion_hook_) {
    LookupCompletion record;
    record.request = req.request;
    record.round = round;
    record.source = req.source;
    record.target = req.target;
    record.ok = ok;
    record.status = status;
    record.hops = hops;
    record.latency_rounds = latency;
    record.attempts = req.wire_attempts;
    completion_hook_(record);
  }
  req.live = false;
  ++req.generation;
  free_slots_.push_back(slot);
  --pending_;
}

sim::Id LookupManager::sample_live(sim::Id exclude) {
  const auto span = net_.engine().id_span();
  if (span.empty()) return sim::kNegInf;
  const auto pos = std::lower_bound(span.begin(), span.end(), exclude);
  const bool excluded = pos != span.end() && *pos == exclude;
  const std::size_t usable = span.size() - (excluded ? 1 : 0);
  if (usable == 0) return sim::kNegInf;
  std::size_t idx = static_cast<std::size_t>(rng_.below(usable));
  if (excluded && idx >= static_cast<std::size_t>(pos - span.begin())) ++idx;
  return span[idx];
}

}  // namespace sssw::service
