// slo.hpp — E15 driver: lookup SLO during crash recovery.
//
// The question behind E15: when crash_frac of a stabilized ring fail-stops
// at once, what happens to *user-visible* lookups — not the structural
// sorted-ring predicate the E14 driver chases, but the success rate and
// tail latency of in-band queries issued open-loop while the survivors
// heal?  The driver measures three windows around the crash (pre / during /
// post-recovery), defines recovery as the first post-crash round whose
// trailing `recovery_window` of completions meets `slo_target`, and checks
// it against a *detection-latency budget* derived from the detector and
// retry configuration (slo_detection_window) — the claim under test is
// "detector + retries restore ≥ 99% lookup success within the detection
// window", with detector-off and retries-off rows as ablations.
//
// Like the other analysis drivers this is a pure function of its options:
// trial seeds, victim picks (the fuzzer's partial-shuffle recipe), and the
// lookup workload all derive from base_seed, so sweep cells and benches
// replay byte-identically.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/config.hpp"
#include "service/lookup_manager.hpp"

namespace sssw::obs {
class Registry;
}

namespace sssw::service {

struct SloOptions {
  std::size_t n = 256;
  std::size_t trials = 1;
  std::uint64_t base_seed = 1;
  double crash_frac = 0.1;    ///< simultaneous fail-stop fraction
  double message_loss = 0.0;  ///< uniform drop probability on the channels
  bool detector = true;       ///< active probe/ack detector on the survivors
  std::size_t burn_in = 0;    ///< pre-measurement rounds; 0 = 2n
  std::size_t warm_rounds = 256;  ///< measured pre-crash window
  std::size_t post_rounds = 0;    ///< measured post-crash window; 0 = 3x budget
  std::size_t recovery_window = 32;  ///< trailing window defining "recovered"
  double slo_target = 0.99;          ///< success-rate bar for recovery
  LookupConfig lookup{};             ///< workload; seed is re-derived per trial
  core::Config protocol{};           ///< detector.enabled forced by `detector`
};

/// Completion stats over one measurement window.  Percentiles are exact
/// (sorted raw samples, successes only) and -1 when the window holds none.
struct SloWindowStats {
  std::uint64_t completed = 0;  ///< requests that finished in the window
  std::uint64_t succeeded = 0;
  double success = -1.0;  ///< succeeded / completed; -1 if completed == 0
  double p50_latency = -1.0, p99_latency = -1.0, p999_latency = -1.0;
  double p50_hops = -1.0, p99_hops = -1.0, p999_hops = -1.0;
};

struct SloResult {
  SloWindowStats pre;           ///< [crash - warm_rounds, crash)
  SloWindowStats during_crash;  ///< [crash, recovery) — or to the end
  SloWindowStats post;          ///< [recovery, end)
  double recovery_rounds = -1.0;     ///< mean rounds to SLO-recovery (recovered trials)
  double recovered_fraction = 0.0;   ///< trials that recovered at all
  bool recovered_in_window = false;  ///< every trial recovered within the budget
  std::uint64_t detection_window = 0;  ///< slo_detection_window(options)
  double slo_target = 0.99;
  LookupManager::Totals totals;  ///< summed over trials
};

/// The round budget the recovery claim is checked against: detector
/// eviction latency ((threshold + retries + sum-of-backoffs) * period, the
/// fuzzer's bound) plus the service's own failure horizon (timeouts,
/// retry backoffs, jitter) plus one recovery window.
std::uint64_t slo_detection_window(const SloOptions& options);

/// `registry`, when non-null, accumulates per-trial node/engine/service
/// metrics (merged in trial order — deterministic).
SloResult measure_slo(const SloOptions& options,
                      obs::Registry* registry = nullptr);

}  // namespace sssw::service
