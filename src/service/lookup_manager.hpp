// lookup_manager.hpp — deterministic open-loop lookup load over the live
// engine (doc/SERVICE.md).
//
// The LookupManager turns the frozen-view greedy evaluation into an in-band
// *service*: lookups are real kLookup messages riding the channels
// concurrently with stabilization, churn, fault plans, message loss, and
// crashes, and every in-flight lookup gets the full robustness treatment —
// per-hop TTL (core::LookupToken), end-to-end timeout with bounded retries
// under exponential backoff + deterministic jitter, optional hedged
// re-issue after a latency threshold, and a typed dead-letter reason
// instead of a silent drop.
//
// Determinism and sharding.  The manager is NOT an engine process — a
// foreign process id would pollute id_span()/IdIndex and every sorted-ring
// predicate.  It drives everything from an engine *round hook*, which the
// sharded engine fires from the sequential merge epilogue (sim/engine.hpp
// hook-threading contract; a round hook does not force rounds onto one
// lane).  All manager RNG draws, timer-wheel pops, and histogram writes
// happen there in a canonical order, and lookup *completions* reach the
// manager through per-origin inboxes (SmallWorldNode::drain_service_inbox,
// written only by the owning node's receive action) drained in ascending-id
// order — so lookup trajectories are bit-identical across shard counts and
// replayable from (config, seed), the same contract the engine keeps
// (DESIGN.md §8).  The engine's timer facility is per-process, so the
// manager keeps its own deadline wheels patterned on the same
// round-keyed-map design, clocked by the hook.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/messages.hpp"
#include "core/network.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace sssw::service {

/// Open-loop workload + robustness knobs.  All defaults are exact in a
/// double / small enough for the token encoding (core/messages.hpp).
struct LookupConfig {
  double rate = 1.0;          ///< lookups issued per round (fractional: accumulator)
  std::uint32_t ttl = 128;    ///< per-hop budget (≤ core::kLookupMaxTtl)
  std::uint32_t timeout_rounds = 64;  ///< per-attempt end-to-end timeout
  std::uint32_t max_retries = 2;      ///< extra attempts after the first
  std::uint32_t backoff_rounds = 8;   ///< base retry delay; doubles per retry
  std::uint32_t backoff_jitter = 4;   ///< deterministic jitter in [0, jitter)
  std::uint32_t hedge_after = 0;      ///< re-issue in parallel after this many rounds (0 = off)
  std::uint64_t seed = 1;             ///< manager RNG stream (pair sampling, jitter)

  friend bool operator==(const LookupConfig&, const LookupConfig&) = default;
};

/// Final state of one lookup request (not one wire attempt).
enum class LookupStatus : std::uint8_t {
  kSucceeded,
  kTimeout,       ///< last live attempt expired with no response
  kNoProgress,    ///< last response: no live pointer made progress
  kTargetDead,    ///< last response: a hop's detector holds the target dead
  kTtlExhausted,  ///< last response: hop budget ran out
};
const char* to_string(LookupStatus status) noexcept;

/// One completed request, delivered to the completion hook at drain time.
struct LookupCompletion {
  std::uint64_t request = 0;  ///< value returned by issue(); monotone
  std::uint64_t round = 0;    ///< completion round
  sim::Id source = sim::kNegInf;
  sim::Id target = sim::kNegInf;
  bool ok = false;
  LookupStatus status = LookupStatus::kTimeout;
  std::uint32_t hops = 0;            ///< valid iff ok
  std::uint64_t latency_rounds = 0;  ///< completion − first issue
  std::uint32_t attempts = 1;        ///< wire attempts (1 + retries + hedges)
};

/// The service.* metric bundle (doc/OBSERVABILITY.md).  Histograms are
/// written from the sequential round hook only, per the obs threading
/// contract.
struct LookupMetrics {
  explicit LookupMetrics(obs::Registry& registry);

  obs::Counter& issued;       ///< requests issued (first attempts)
  obs::Counter& attempts;     ///< wire attempts (first + retries + hedges)
  obs::Counter& retries;      ///< retry attempts after a failed attempt
  obs::Counter& hedges;       ///< hedged parallel attempts
  obs::Counter& succeeded;    ///< requests completed with a hit
  obs::Counter& failed;       ///< requests dead-lettered
  obs::Counter& stale;        ///< late/duplicate responses dropped
  obs::Counter& deadletter_timeout;      ///< failures typed kTimeout
  obs::Counter& deadletter_no_progress;  ///< failures typed kNoProgress
  obs::Counter& deadletter_target_dead;  ///< failures typed kTargetDead
  obs::Counter& deadletter_ttl;          ///< failures typed kTtlExhausted
  obs::Gauge& pending;        ///< in-flight requests at round end (high-water)
  obs::Histogram& hops;       ///< hop counts of successful lookups
  obs::Histogram& latency;    ///< round latency of successful lookups
};

class LookupManager {
 public:
  /// Registers the round hook on `net`'s engine.  The manager must be
  /// destroyed before the network (it deregisters the hook in its dtor).
  LookupManager(core::SmallWorldNetwork& net, const LookupConfig& config);
  ~LookupManager();

  LookupManager(const LookupManager&) = delete;
  LookupManager& operator=(const LookupManager&) = delete;

  /// Binds the service.* metrics in `registry` (must outlive the manager).
  void attach_metrics(obs::Registry& registry);

  /// Called once per completed request, from the sequential round hook.
  void set_completion_hook(std::function<void(const LookupCompletion&)> hook) {
    completion_hook_ = std::move(hook);
  }

  /// Live rate knob (e.g. quiesce before a measurement wave).
  void set_rate(double rate) noexcept { config_.rate = rate; }
  const LookupConfig& config() const noexcept { return config_; }

  /// Issues one lookup now (outside the open-loop load; used by the fuzz
  /// liveness wave and tests).  Call from sequential sections only.
  /// Returns the request id echoed in the LookupCompletion.
  std::uint64_t issue(sim::Id source, sim::Id target);

  /// Requests still in flight (issued, neither hit nor dead-lettered).
  std::size_t pending() const noexcept { return pending_; }

  /// Aggregate counters, maintained whether or not a registry is attached —
  /// the deterministic digest surface for the shard-invariance tests.
  struct Totals {
    std::uint64_t issued = 0;
    std::uint64_t attempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t hedges = 0;
    std::uint64_t succeeded = 0;
    std::uint64_t failed = 0;
    std::uint64_t stale = 0;
    std::uint64_t deadletter_timeout = 0;
    std::uint64_t deadletter_no_progress = 0;
    std::uint64_t deadletter_target_dead = 0;
    std::uint64_t deadletter_ttl = 0;
    std::uint64_t hop_sum = 0;      ///< over successful lookups
    std::uint64_t latency_sum = 0;  ///< over successful lookups

    friend bool operator==(const Totals&, const Totals&) = default;
  };
  const Totals& totals() const noexcept { return totals_; }

 private:
  struct Request {
    sim::Id source = sim::kNegInf;
    sim::Id target = sim::kNegInf;
    std::uint64_t request = 0;      ///< external id (monotone)
    std::uint64_t first_issue = 0;  ///< round of the first attempt
    std::uint32_t retries_used = 0;
    std::uint32_t wire_attempts = 0;
    std::uint32_t generation = 0;  ///< guards recycled slots in the wheels
    bool live = false;
    bool hedged = false;
    core::LookupReason last_reason = core::LookupReason::kNone;
    std::vector<std::uint64_t> live_seqs;  ///< outstanding attempt seqs
  };
  using SlotRef = std::pair<std::uint32_t, std::uint32_t>;  ///< (slot, generation)

  void on_round(std::uint64_t round);
  void drain_inboxes(std::uint64_t round);
  void process_timeouts(std::uint64_t round);
  void process_hedges(std::uint64_t round);
  void process_retries(std::uint64_t round);
  void issue_load(std::uint64_t round);

  std::uint32_t acquire_slot();
  Request* slot_of(const SlotRef& ref);
  /// Sends one wire attempt for the request in `slot` (re-sampling the
  /// source if it crashed), arming timeout and hedge deadlines.
  void issue_attempt(std::uint32_t slot, std::uint64_t round, bool is_retry,
                     bool is_hedge);
  void attempt_failed(std::uint32_t slot, std::uint64_t seq,
                      core::LookupReason reason, std::uint64_t round);
  void complete(std::uint32_t slot, bool ok, LookupStatus status,
                std::uint32_t hops, std::uint64_t round);
  /// A live node other than `exclude` (uniform over id_span), or kNegInf.
  sim::Id sample_live(sim::Id exclude);

  core::SmallWorldNetwork& net_;
  LookupConfig config_;
  sim::Engine::HookId hook_ = 0;
  util::Rng rng_;
  double load_accumulator_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_request_ = 0;
  std::size_t pending_ = 0;
  Totals totals_;
  std::optional<LookupMetrics> metrics_;
  std::function<void(const LookupCompletion&)> completion_hook_;
  std::vector<sim::Id> enabled_sources_;  ///< sorted; only these get drained
  std::vector<Request> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<std::uint64_t, std::uint32_t> seq_to_slot_;
  // Deadline wheels, keyed by absolute round (ordered maps: pops are
  // canonical).  Timeout entries are (seq) — stale ones no-op when the seq
  // is gone; retry/hedge entries are generation-guarded slot refs.
  std::map<std::uint64_t, std::vector<std::uint64_t>> timeout_wheel_;
  std::map<std::uint64_t, std::vector<SlotRef>> retry_wheel_;
  std::map<std::uint64_t, std::vector<SlotRef>> hedge_wheel_;
};

}  // namespace sssw::service
