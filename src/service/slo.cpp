#include "service/slo.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/network.hpp"
#include "obs/registry.hpp"
#include "topology/initial_states.hpp"
#include "util/rng.hpp"

namespace sssw::service {

namespace {

/// One completion, in rounds relative to the trial's crash round.
struct Sample {
  std::int64_t rel_round;
  bool ok;
  double latency;
  double hops;
};

double percentile(std::vector<double>& values, double q) {
  if (values.empty()) return -1.0;
  std::sort(values.begin(), values.end());
  const auto count = static_cast<double>(values.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * count));
  idx = idx > 0 ? idx - 1 : 0;
  idx = std::min(idx, values.size() - 1);
  return values[idx];
}

/// Stats over samples with rel_round in [lo, hi).
SloWindowStats window_stats(const std::vector<Sample>& samples,
                            std::int64_t lo, std::int64_t hi) {
  SloWindowStats stats;
  std::vector<double> latencies, hops;
  for (const Sample& s : samples) {
    if (s.rel_round < lo || s.rel_round >= hi) continue;
    ++stats.completed;
    if (s.ok) {
      ++stats.succeeded;
      latencies.push_back(s.latency);
      hops.push_back(s.hops);
    }
  }
  if (stats.completed > 0) {
    stats.success = static_cast<double>(stats.succeeded) /
                    static_cast<double>(stats.completed);
  }
  stats.p50_latency = percentile(latencies, 0.50);
  stats.p99_latency = percentile(latencies, 0.99);
  stats.p999_latency = percentile(latencies, 0.999);
  stats.p50_hops = percentile(hops, 0.50);
  stats.p99_hops = percentile(hops, 0.99);
  stats.p999_hops = percentile(hops, 0.999);
  return stats;
}

/// First rel_round >= 0 whose trailing `window` of completions meets
/// `target` (and is non-empty), or -1 if none does within [0, horizon).
std::int64_t recovery_round(const std::vector<Sample>& samples,
                            std::int64_t horizon, std::int64_t window,
                            double target) {
  if (horizon <= 0) return -1;
  std::vector<std::uint32_t> completed(static_cast<std::size_t>(horizon), 0);
  std::vector<std::uint32_t> succeeded(static_cast<std::size_t>(horizon), 0);
  for (const Sample& s : samples) {
    if (s.rel_round < 0 || s.rel_round >= horizon) continue;
    const auto r = static_cast<std::size_t>(s.rel_round);
    ++completed[r];
    if (s.ok) ++succeeded[r];
  }
  // Walk backwards keeping the sums of the window [r, r + window): the
  // answer is the earliest r whose entire suffix of windows stays at the
  // target, so a transient blip that later regresses does not count as
  // recovered.  An empty window (no completions) is neutral.
  std::uint64_t win_completed = 0, win_succeeded = 0;
  std::uint64_t suffix_completed = 0;
  std::int64_t earliest = -1;
  for (std::int64_t r = horizon - 1; r >= 0; --r) {
    win_completed += completed[static_cast<std::size_t>(r)];
    win_succeeded += succeeded[static_cast<std::size_t>(r)];
    suffix_completed += completed[static_cast<std::size_t>(r)];
    const std::int64_t tail = r + window;
    if (tail < horizon) {
      win_completed -= completed[static_cast<std::size_t>(tail)];
      win_succeeded -= succeeded[static_cast<std::size_t>(tail)];
    }
    const bool meets = win_completed == 0 ||
                       static_cast<double>(win_succeeded) >=
                           target * static_cast<double>(win_completed);
    if (!meets) {
      suffix_completed -= completed[static_cast<std::size_t>(r)];
      break;
    }
    earliest = r;
  }
  // A silent suffix is not evidence of recovery.
  return suffix_completed > 0 ? earliest : -1;
}

}  // namespace

std::uint64_t slo_detection_window(const SloOptions& options) {
  const core::DetectorConfig& d = options.protocol.detector;
  const std::uint64_t evict_latency =
      static_cast<std::uint64_t>(d.suspect_threshold + d.max_retries +
                                 (2u << d.max_retries)) *
      d.probe_period;
  const LookupConfig& l = options.lookup;
  const std::uint64_t backoff_sum =
      static_cast<std::uint64_t>(l.backoff_rounds) *
          ((1ull << l.max_retries) - 1) +
      static_cast<std::uint64_t>(l.backoff_jitter) * l.max_retries;
  const std::uint64_t service_horizon =
      static_cast<std::uint64_t>(l.timeout_rounds) * (l.max_retries + 1) +
      backoff_sum;
  return evict_latency + service_horizon + options.recovery_window;
}

SloResult measure_slo(const SloOptions& options, obs::Registry* registry) {
  SloResult result;
  result.slo_target = options.slo_target;
  result.detection_window = slo_detection_window(options);
  const std::size_t burn_in =
      options.burn_in > 0 ? options.burn_in : 2 * options.n;
  const std::size_t post_rounds =
      options.post_rounds > 0
          ? options.post_rounds
          : 3 * static_cast<std::size_t>(result.detection_window);

  std::vector<Sample> pooled_pre, pooled_during, pooled_post;
  double recovery_sum = 0.0;
  std::size_t recovered = 0;
  bool all_in_window = true;

  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    const std::uint64_t seed = options.base_seed + trial;
    util::Rng rng(seed);
    auto ids = core::random_ids(options.n, rng);
    core::NetworkOptions net_options;
    net_options.seed = seed;
    net_options.message_loss = options.message_loss;
    net_options.protocol = options.protocol;
    net_options.protocol.detector.enabled = options.detector;
    core::SmallWorldNetwork net =
        core::make_stable_ring(std::move(ids), net_options);
    obs::Registry trial_registry;
    net.attach_metrics(trial_registry);
    net.run_rounds(burn_in);  // links spread, probe timers cycling

    LookupConfig lookup = options.lookup;
    lookup.seed = seed ^ options.lookup.seed;
    LookupManager manager(net, lookup);
    manager.attach_metrics(trial_registry);
    std::vector<Sample> samples;
    std::int64_t crash_rel = 0;  // completion rounds relative to the crash
    manager.set_completion_hook([&](const LookupCompletion& c) {
      samples.push_back({static_cast<std::int64_t>(c.round) - crash_rel, c.ok,
                         static_cast<double>(c.latency_rounds),
                         static_cast<double>(c.hops)});
    });

    net.run_rounds(options.warm_rounds);

    // Victim pick: the fuzzer's recipe (dedicated stream, partial shuffle).
    std::vector<sim::Id> victims(net.engine().id_span().begin(),
                                 net.engine().id_span().end());
    std::size_t count = static_cast<std::size_t>(
        options.crash_frac * static_cast<double>(victims.size()));
    if (options.crash_frac > 0) count = std::max<std::size_t>(count, 1);
    count = std::min(count, victims.size() - 2);
    util::Rng pick(seed ^ 0x9e3779b97f4a7c15ull);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j = i + pick.below(victims.size() - i);
      std::swap(victims[i], victims[j]);
    }
    victims.resize(count);
    const std::int64_t crash_round =
        static_cast<std::int64_t>(net.engine().round());
    for (const sim::Id victim : victims) net.crash(victim);

    // Re-base the completions recorded so far (hook captured crash_rel by
    // reference; everything before this point is pre-crash, negative rel).
    crash_rel = crash_round;
    for (Sample& s : samples) s.rel_round -= crash_round;

    net.run_rounds(post_rounds);

    const std::int64_t horizon = static_cast<std::int64_t>(post_rounds);
    const std::int64_t rec = recovery_round(
        samples, horizon, static_cast<std::int64_t>(options.recovery_window),
        options.slo_target);
    if (rec >= 0) {
      ++recovered;
      recovery_sum += static_cast<double>(rec);
      if (static_cast<std::uint64_t>(rec) > result.detection_window)
        all_in_window = false;
    } else {
      all_in_window = false;
    }
    const std::int64_t during_end = rec >= 0 ? rec : horizon;
    for (const Sample& s : samples) {
      if (s.rel_round < 0) {
        pooled_pre.push_back(s);
      } else if (s.rel_round < during_end) {
        pooled_during.push_back(s);
      } else {
        pooled_post.push_back(s);
      }
    }

    const LookupManager::Totals& t = manager.totals();
    result.totals.issued += t.issued;
    result.totals.attempts += t.attempts;
    result.totals.retries += t.retries;
    result.totals.hedges += t.hedges;
    result.totals.succeeded += t.succeeded;
    result.totals.failed += t.failed;
    result.totals.stale += t.stale;
    result.totals.deadletter_timeout += t.deadletter_timeout;
    result.totals.deadletter_no_progress += t.deadletter_no_progress;
    result.totals.deadletter_target_dead += t.deadletter_target_dead;
    result.totals.deadletter_ttl += t.deadletter_ttl;
    result.totals.hop_sum += t.hop_sum;
    result.totals.latency_sum += t.latency_sum;
    if (registry != nullptr) registry->merge(trial_registry);
  }

  const std::int64_t warm = static_cast<std::int64_t>(options.warm_rounds);
  const std::int64_t horizon = static_cast<std::int64_t>(post_rounds);
  result.pre = window_stats(pooled_pre, -warm, 0);
  result.during_crash = window_stats(pooled_during, 0, horizon);
  result.post = window_stats(pooled_post, 0, horizon + 1);
  result.recovery_rounds =
      recovered > 0 ? recovery_sum / static_cast<double>(recovered) : -1.0;
  result.recovered_fraction =
      static_cast<double>(recovered) / static_cast<double>(options.trials);
  result.recovered_in_window = recovered == options.trials && all_in_window;
  return result;
}

}  // namespace sssw::service
