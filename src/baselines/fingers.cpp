#include "baselines/fingers.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace sssw::baselines {

using sim::Id;
using sim::is_node_id;
using sim::kNegInf;
using sim::kPosInf;

FingerNode::FingerNode(Id id, Id l, Id r, const FingerConfig& config)
    : sim::Process(sim::kFingerProcess), config_(config), id_(id), l_(l), r_(r) {
  SSSW_CHECK_MSG(config.finger_slots >= 1, "need at least one finger slot");
  fingers_.assign(config.finger_slots, id_);  // self = "unknown yet"
}

namespace {

// Tag-check downcast (see core::as_node): kind comparison instead of RTTI.
const FingerNode* as_finger_node(const sim::Process* process) noexcept {
  return process != nullptr && process->kind() == sim::kFingerProcess
             ? static_cast<const FingerNode*>(process)
             : nullptr;
}

}  // namespace

Id FingerNode::finger_key(std::uint32_t slot) const noexcept {
  SSSW_DCHECK(slot >= 1 && slot <= config_.finger_slots);
  const double key = id_ + std::pow(2.0, -static_cast<double>(slot));
  return key < 1.0 ? key : kPosInf;  // no wraparound (documented)
}

void FingerNode::on_message(sim::Context& ctx, const sim::Message& message) {
  switch (message.type) {
    case kLin:
      linearize(ctx, message.id1);
      break;
    case kFind:
      if (is_node_id(message.id1) && is_node_id(message.id2))
        forward_find(ctx, message.id1, message.id2);
      break;
    case kFound: {
      // Install the owner into the slot whose key matches exactly (keys are
      // recomputed deterministically, so bitwise equality holds).
      if (!is_node_id(message.id1)) break;
      for (std::uint32_t slot = 1; slot <= config_.finger_slots; ++slot) {
        if (finger_key(slot) == message.id2) {
          fingers_[slot - 1] = message.id1;
          break;
        }
      }
      break;
    }
    default:
      break;
  }
}

void FingerNode::on_regular(sim::Context& ctx) {
  if (l_ > kNegInf) ctx.send(l_, sim::Message{kLin, id_});
  if (r_ < kPosInf) ctx.send(r_, sim::Message{kLin, id_});
  // Refresh one finger per activation, round-robin.
  next_refresh_ = next_refresh_ % config_.finger_slots + 1;
  const Id key = finger_key(next_refresh_);
  if (is_node_id(key)) forward_find(ctx, key, id_);
}

void FingerNode::linearize(sim::Context& ctx, Id id) {
  if (!is_node_id(id)) return;
  if (id > id_) {
    if (id < r_) {
      if (r_ < kPosInf) ctx.send(id, sim::Message{kLin, r_});
      r_ = id;
    } else if (id > r_) {
      ctx.send(r_, sim::Message{kLin, id});
    }
  } else if (id < id_) {
    if (id > l_) {
      if (l_ > kNegInf) ctx.send(id, sim::Message{kLin, l_});
      l_ = id;
    } else if (id < l_) {
      ctx.send(l_, sim::Message{kLin, id});
    }
  }
}

void FingerNode::forward_find(sim::Context& ctx, Id key, Id origin) {
  if (key <= id_) {
    // Overshot (stale find, or we are already past the key): we are a valid
    // "node ≥ key" — answer with ourselves; the periodic refresh fixes any
    // imprecision once the list is sorted.
    ctx.send(origin, sim::Message{kFound, id_, key});
    return;
  }
  if (r_ == kPosInf) {
    // No node beyond us: we are the terminal owner for keys past the max.
    ctx.send(origin, sim::Message{kFound, id_, key});
    return;
  }
  if (r_ >= key) {
    ctx.send(origin, sim::Message{kFound, r_, key});
    return;
  }
  // Greedy clockwise: the largest known node still below the key.
  Id best = r_;
  for (const Id finger : fingers_)
    if (finger > best && finger < key) best = finger;
  ctx.send(best, sim::Message{kFind, key, origin});
}

bool fingers_sorted_list(const sim::Engine& engine) {
  const std::span<const Id> ids = engine.id_span();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto* node = as_finger_node(engine.find(ids[i]));
    if (node == nullptr) return false;
    const Id want_l = i == 0 ? kNegInf : ids[i - 1];
    const Id want_r = i + 1 == ids.size() ? kPosInf : ids[i + 1];
    if (node->l() != want_l || node->r() != want_r) return false;
  }
  return true;
}

bool fingers_correct(const sim::Engine& engine) {
  const std::span<const Id> ids = engine.id_span();
  if (ids.empty()) return true;
  bool ok = true;
  engine.for_each([&](const sim::Process& process) {
    const auto* node = as_finger_node(&process);
    if (node == nullptr) {
      ok = false;
      return;
    }
    for (std::uint32_t slot = 1; slot <= node->fingers().size(); ++slot) {
      const Id key = node->finger_key(slot);
      if (!is_node_id(key)) continue;
      const auto it = std::lower_bound(ids.begin(), ids.end(), key);
      const Id expected = it == ids.end() ? ids.back() : *it;
      if (node->fingers()[slot - 1] != expected) ok = false;
    }
  });
  return ok;
}

graph::Digraph finger_view(const sim::Engine& engine) {
  const std::span<const Id> ids = engine.id_span();
  graph::Digraph g(ids.size());
  const auto rank_of = [&](Id id) {
    return static_cast<graph::Vertex>(
        std::lower_bound(ids.begin(), ids.end(), id) - ids.begin());
  };
  engine.for_each([&](const sim::Process& process) {
    const auto* node = as_finger_node(&process);
    if (node == nullptr) return;
    const graph::Vertex from = rank_of(node->id());
    const auto add = [&](Id to) {
      if (is_node_id(to) && to != node->id() &&
          std::binary_search(ids.begin(), ids.end(), to))
        g.add_edge_unique(from, rank_of(to));
    };
    add(node->l());
    add(node->r());
    for (const Id finger : node->fingers()) add(finger);
  });
  return g;
}

}  // namespace sssw::baselines
