// fingers.hpp — a Chord-style self-stabilizing finger overlay
// ("Re-Chord-lite", after the authors' own Re-Chord [15]).
//
// The paper's introduction positions the small-world protocol against
// structured overlays: comparable polylogarithmic routing, but higher
// degree and a uniform structure on the overlay side.  This baseline makes
// that comparison apples-to-apples by building the structured side with the
// same self-stabilization toolkit on the same engine:
//
//  * the sorted list is maintained by plain linearization (lin messages,
//    exactly as in baselines/linearization.hpp);
//  * on top, every node keeps fingers toward the keys id + 2^{-k} (k = 1..K,
//    no wraparound — the max node simply has fewer fingers), refreshed
//    round-robin: a `find(key)` message greedily walks right using fingers
//    and the list link; the first node whose right neighbour passes the key
//    answers with `found(owner, key)`, and the origin installs the owner as
//    its finger for that slot.
//
// Fingers self-stabilize by periodic refresh: wrong fingers are overwritten
// within one refresh cycle once the underlying list is sorted.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/engine.hpp"

namespace sssw::baselines {

struct FingerConfig {
  /// Number of finger slots: slot k targets id + 2^{-k}.  log2(n) slots
  /// suffice; extra slots collapse onto the right neighbour.
  std::uint32_t finger_slots = 16;
};

class FingerNode final : public sim::Process {
 public:
  static constexpr sim::MessageType kLin = 0;
  static constexpr sim::MessageType kFind = 1;   ///< id1 = key, id2 = origin
  static constexpr sim::MessageType kFound = 2;  ///< id1 = owner, id2 = key

  FingerNode(sim::Id id, sim::Id l, sim::Id r, const FingerConfig& config);

  sim::Id id() const noexcept override { return id_; }
  sim::Id l() const noexcept { return l_; }
  sim::Id r() const noexcept { return r_; }
  const std::vector<sim::Id>& fingers() const noexcept { return fingers_; }

  /// Finger slot k's target key, or +∞ when it falls past the id space.
  sim::Id finger_key(std::uint32_t slot) const noexcept;

  void on_message(sim::Context& ctx, const sim::Message& message) override;
  void on_regular(sim::Context& ctx) override;

 private:
  void linearize(sim::Context& ctx, sim::Id id);
  void forward_find(sim::Context& ctx, sim::Id key, sim::Id origin);

  const FingerConfig config_;
  const sim::Id id_;
  sim::Id l_;
  sim::Id r_;
  std::vector<sim::Id> fingers_;   ///< fingers_[k] = node owning finger_key(k+1)
  std::uint32_t next_refresh_ = 0; ///< round-robin refresh cursor
};

/// Definition 4.8 over a finger-overlay engine.
bool fingers_sorted_list(const sim::Engine& engine);

/// True when every finger of every node points at the correct owner (the
/// smallest node id ≥ the slot key) — the overlay's legal state.
bool fingers_correct(const sim::Engine& engine);

/// Snapshot of list + finger links as a digraph over id ranks.
graph::Digraph finger_view(const sim::Engine& engine);

}  // namespace sssw::baselines
