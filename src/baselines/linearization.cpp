#include "baselines/linearization.hpp"

#include <span>

namespace sssw::baselines {

using sim::Id;
using sim::is_node_id;
using sim::kNegInf;
using sim::kPosInf;

namespace {

// Tag-check downcast (see core::as_node): kind comparison instead of RTTI.
const LinearizationNode* as_lin_node(const sim::Process* process) noexcept {
  return process != nullptr &&
                 process->kind() == sim::kLinearizationProcess
             ? static_cast<const LinearizationNode*>(process)
             : nullptr;
}

}  // namespace

void LinearizationNode::on_message(sim::Context& ctx, const sim::Message& message) {
  if (message.type == kLin) linearize(ctx, message.id1);
}

void LinearizationNode::on_regular(sim::Context& ctx) {
  if (l_ > kNegInf) ctx.send(l_, sim::Message{kLin, id_});
  if (r_ < kPosInf) ctx.send(r_, sim::Message{kLin, id_});
}

void LinearizationNode::linearize(sim::Context& ctx, Id id) {
  if (!is_node_id(id)) return;
  if (id > id_) {
    if (id < r_) {
      if (r_ < kPosInf) ctx.send(id, sim::Message{kLin, r_});
      r_ = id;
    } else if (id > r_) {
      ctx.send(r_, sim::Message{kLin, id});
    }
  } else if (id < id_) {
    if (id > l_) {
      if (l_ > kNegInf) ctx.send(id, sim::Message{kLin, l_});
      l_ = id;
    } else if (id < l_) {
      ctx.send(l_, sim::Message{kLin, id});
    }
  }
}

bool is_sorted_list(const sim::Engine& engine) {
  const std::span<const Id> ids = engine.id_span();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto* node = as_lin_node(engine.find(ids[i]));
    if (node == nullptr) return false;
    const Id want_l = i == 0 ? kNegInf : ids[i - 1];
    const Id want_r = i + 1 == ids.size() ? kPosInf : ids[i + 1];
    if (node->l() != want_l || node->r() != want_r) return false;
  }
  return true;
}

}  // namespace sssw::baselines
