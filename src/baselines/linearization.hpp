// linearization.hpp — plain graph linearization (Onus–Richa–Scheideler [19]).
//
// The classic self-stabilizing sorting protocol the paper builds on: each
// node keeps only (l, r); the receive action is LINEARIZE without the
// long-range-link shortcut; the regular action announces the node to both
// neighbours.  No ring, no probing, no move-and-forget.
//
// It is the baseline for ablation A1: what does the paper's machinery cost
// and buy relative to the substrate it extends?
#pragma once

#include "sim/engine.hpp"

namespace sssw::baselines {

class LinearizationNode final : public sim::Process {
 public:
  static constexpr sim::MessageType kLin = 0;

  LinearizationNode(sim::Id id, sim::Id l, sim::Id r)
      : sim::Process(sim::kLinearizationProcess), id_(id), l_(l), r_(r) {}

  sim::Id id() const noexcept override { return id_; }
  sim::Id l() const noexcept { return l_; }
  sim::Id r() const noexcept { return r_; }

  void on_message(sim::Context& ctx, const sim::Message& message) override;
  void on_regular(sim::Context& ctx) override;

 private:
  void linearize(sim::Context& ctx, sim::Id id);

  const sim::Id id_;
  sim::Id l_;
  sim::Id r_;
};

/// Definition 4.8 over a pure-linearization engine.
bool is_sorted_list(const sim::Engine& engine);

}  // namespace sssw::baselines
